"""Row-at-a-time operators: scan, filter, project, distinct, limit, rename.

These are the unary building blocks every strategy shares.  The join
family lives in :mod:`repro.engine.operators.joins`; grouping in
:mod:`repro.engine.operators.aggregate`.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from ...errors import ExecutionError
from ..expressions import EvalContext, Expr, truth
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..schema import Column, Schema
from ..types import row_group_key, row_sort_key
from ..trace import (
    CONTRACT_FILTERING,
    CONTRACT_PRESERVING,
)
from .base import Operator, as_operator


class Filter(Operator):
    """Keep rows whose predicate is definitely TRUE (SQL WHERE)."""

    trace_contract = CONTRACT_FILTERING

    def __init__(self, source, predicate: Expr, outer: Optional[EvalContext] = None):
        self.source = as_operator(source)
        self.predicate = predicate
        self.outer = outer or EvalContext()
        self.schema = self.source.schema

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        base_ctx = self.outer.push(self.schema, ())
        for row in self._input(self.source):
            metrics.add("predicate_evals")
            ctx = base_ctx.with_row(self.schema, row)
            if truth(self.predicate, ctx).is_true():
                self._emit()
                yield row


class Project(Operator):
    """Projection onto a list of column references (no dedup)."""

    trace_contract = CONTRACT_PRESERVING

    def __init__(self, source, refs: Sequence[str]):
        self.source = as_operator(source)
        self.refs = list(refs)
        self._idx = self.source.schema.indices_of(self.refs)
        self.schema = self.source.schema.project(self.refs)

    def _iterate(self) -> Iterator[Row]:
        idx = self._idx
        for row in self._input(self.source):
            self._emit()
            yield tuple(row[i] for i in idx)


class Map(Operator):
    """Compute expressions into new columns (SELECT list with expressions)."""

    trace_contract = CONTRACT_PRESERVING

    def __init__(self, source, exprs: Sequence[Expr], columns: Sequence[Column],
                 outer: Optional[EvalContext] = None):
        if len(exprs) != len(columns):
            raise ExecutionError("Map needs one output column per expression")
        self.source = as_operator(source)
        self.exprs = list(exprs)
        self.outer = outer or EvalContext()
        self.schema = Schema(columns)

    def _iterate(self) -> Iterator[Row]:
        from ..expressions import _value

        src_schema = self.source.schema
        base_ctx = self.outer.push(src_schema, ())
        for row in self._input(self.source):
            ctx = base_ctx.with_row(src_schema, row)
            self._emit()
            yield tuple(_value(e, ctx) for e in self.exprs)


class Distinct(Operator):
    """Duplicate elimination; NULLs compare equal for grouping purposes."""

    trace_contract = CONTRACT_FILTERING

    def __init__(self, source):
        self.source = as_operator(source)
        self.schema = self.source.schema

    def _iterate(self) -> Iterator[Row]:
        seen = set()
        metrics = current_metrics()
        for row in self._input(self.source):
            key = row_group_key(row)
            metrics.add("hash_probes")
            if key not in seen:
                seen.add(key)
                self._emit()
                yield row


class Limit(Operator):
    """Emit at most *n* rows."""

    trace_contract = CONTRACT_FILTERING

    def __init__(self, source, n: int):
        self.source = as_operator(source)
        self.n = n
        self.schema = self.source.schema

    def _iterate(self) -> Iterator[Row]:
        if self.n <= 0:
            return
        count = 0
        for row in self._input(self.source):
            self._emit()
            yield row
            count += 1
            if count >= self.n:
                break


class Rename(Operator):
    """Re-qualify all columns under an alias (SQL ``FROM t AS x``)."""

    trace_contract = CONTRACT_PRESERVING

    def __init__(self, source, alias: str):
        self.source = as_operator(source)
        self.schema = self.source.schema.rename_table(alias)

    def _iterate(self) -> Iterator[Row]:
        return iter(self._input(self.source))


class Sort(Operator):
    """Full sort on the given columns using the canonical NULLs-first order.

    Sort-based ``nest`` is implemented on top of this operator, mirroring
    the paper's stored-procedure implementation, which "makes the database
    sort the intermediate result".
    """

    trace_contract = CONTRACT_PRESERVING

    def __init__(self, source, refs: Sequence[str], descending: bool = False):
        self.source = as_operator(source)
        self.refs = list(refs)
        self.descending = descending
        self._idx = self.source.schema.indices_of(self.refs)
        self.schema = self.source.schema

    def _iterate(self) -> Iterator[Row]:
        rows = list(self._input(self.source))
        metrics = current_metrics()
        metrics.add("rows_sorted", len(rows))
        idx = self._idx
        rows.sort(
            key=lambda r: row_sort_key(tuple(r[i] for i in idx)),
            reverse=self.descending,
        )
        for row in rows:
            self._emit()
            yield row
