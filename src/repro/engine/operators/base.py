"""Physical operator protocol.

Operators follow the classic iterator (Volcano) model: each exposes an
output :class:`~repro.engine.schema.Schema` and yields row tuples.  They
charge work to the ambient :class:`~repro.engine.metrics.Metrics` so the
benchmark harness can report machine-independent costs.

Operators may be iterated only once unless noted; call :meth:`materialize`
to pin results.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...errors import ExecutionError
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..schema import Schema


class Operator:
    """Base class for physical operators."""

    #: output schema; subclasses set this in __init__
    schema: Schema

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    def materialize(self) -> Relation:
        """Drain the operator into a :class:`Relation`."""
        return Relation.from_iter(self.schema, iter(self))

    def _emit(self, n: int = 1) -> None:
        current_metrics().add("rows_out", n)


class RelationSource(Operator):
    """Adapts a materialized :class:`Relation` into the operator protocol."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.schema = relation.schema

    def __iter__(self) -> Iterator[Row]:
        metrics = current_metrics()
        for row in self.relation.rows:
            metrics.add("rows_scanned")
            yield row


def as_operator(source) -> Operator:
    """Coerce a Relation or Operator into an Operator."""
    if isinstance(source, Operator):
        return source
    if isinstance(source, Relation):
        return RelationSource(source)
    raise ExecutionError(f"cannot treat {type(source).__name__} as an operator")


def as_relation(source) -> Relation:
    """Coerce a Relation or Operator into a materialized Relation."""
    if isinstance(source, Relation):
        return source
    if isinstance(source, Operator):
        return source.materialize()
    raise ExecutionError(f"cannot treat {type(source).__name__} as a relation")
