"""Physical operator protocol.

Operators follow the classic iterator (Volcano) model: each exposes an
output :class:`~repro.engine.schema.Schema` and yields row tuples.  They
charge work to the ambient :class:`~repro.engine.metrics.Metrics` so the
benchmark harness can report machine-independent costs.

Operators may be iterated only once unless noted; call :meth:`materialize`
to pin results.

Tracing: subclasses implement :meth:`_iterate`; the base ``__iter__``
dispatches to it directly when tracing is off (one ``is None`` check of
overhead) and wraps it in a :class:`~repro.engine.trace.Span` recording
``rows_in``/``rows_out`` when a :func:`~repro.engine.trace.tracing`
context is active.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ...errors import ExecutionError
from ..governor import checkpoint, current_governor
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..schema import Schema
from ..trace import CONTRACT_PRESERVING, Span, Tracer, current_tracer

#: rows between cooperative checkpoints while an operator drains under a
#: governor — bounds timeout overshoot by the time 512 rows take
_CHECKPOINT_EVERY = 512


def _count_rows_in(source, span: Span) -> Iterator[Row]:
    for row in source:
        span.add("rows_in")
        yield row


def _governed_iter(it: Iterator[Row]) -> Iterator[Row]:
    n = 0
    for row in it:
        n += 1
        if not n % _CHECKPOINT_EVERY:
            checkpoint("operator-rows")
        yield row


class Operator:
    """Base class for physical operators."""

    #: output schema; subclasses set this in __init__
    schema: Schema

    #: cardinality contract checked by the trace invariants
    #: (one of the ``repro.engine.trace.CONTRACT_*`` values, or None)
    trace_contract: Optional[str] = None

    #: the open span while this operator is being traced
    _span: Optional[Span] = None

    def __iter__(self) -> Iterator[Row]:
        tracer = current_tracer()
        it = self._iterate() if tracer is None else self._traced_iter(tracer)
        if current_governor() is None:
            return it
        return _governed_iter(it)

    def _iterate(self) -> Iterator[Row]:
        raise NotImplementedError

    def trace_attrs(self) -> Dict[str, Any]:
        """Short, deterministic attributes shown on the span's plan line."""
        return {}

    def _traced_iter(self, tracer: Tracer) -> Iterator[Row]:
        span = tracer.open(
            type(self).__name__, self.trace_attrs(), contract=self.trace_contract
        )
        self._span = span
        try:
            for row in self._iterate():
                span.add("rows_out")
                yield row
        finally:
            self._span = None
            tracer.close(span)

    def _input(self, source) -> Iterator[Row]:
        """Wrap an input iterable so consumed rows count as ``rows_in``.

        Returns *source* untouched when this operator is not being
        traced, so the disabled path adds no per-row work.
        """
        span = self._span
        if span is None:
            return source
        return _count_rows_in(source, span)

    def materialize(self) -> Relation:
        """Drain the operator into a :class:`Relation`."""
        return Relation.from_iter(self.schema, iter(self))

    def _emit(self, n: int = 1) -> None:
        current_metrics().add("rows_out", n)


class RelationSource(Operator):
    """Adapts a materialized :class:`Relation` into the operator protocol."""

    trace_contract = CONTRACT_PRESERVING

    def __init__(self, relation: Relation):
        self.relation = relation
        self.schema = relation.schema

    def trace_attrs(self) -> Dict[str, Any]:
        tables = {c.table for c in self.schema.columns if c.table}
        return {"table": "/".join(sorted(tables))} if tables else {}

    def _iterate(self) -> Iterator[Row]:
        metrics = current_metrics()
        for row in self._input(self.relation.rows):
            metrics.add("rows_scanned")
            yield row


def as_operator(source) -> Operator:
    """Coerce a Relation or Operator into an Operator."""
    if isinstance(source, Operator):
        return source
    if isinstance(source, Relation):
        return RelationSource(source)
    raise ExecutionError(f"cannot treat {type(source).__name__} as an operator")


def as_relation(source) -> Relation:
    """Coerce a Relation or Operator into a materialized Relation."""
    if isinstance(source, Relation):
        return source
    if isinstance(source, Operator):
        return source.materialize()
    raise ExecutionError(f"cannot treat {type(source).__name__} as a relation")
