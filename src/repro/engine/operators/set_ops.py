"""Set operators: union, intersection, difference.

Used by the classical-transformation baseline ([3] in the paper rewrites
nested queries into Cartesian products followed by *differences*) and
available through the public algebra API.  All three follow SQL's set
semantics (duplicates eliminated; NULLs group together), which is also the
semantics of the nested relational algebra of Section 3.
"""

from __future__ import annotations

from typing import Iterator, Set

from ...errors import SchemaError
from ..metrics import current_metrics
from ..relation import Relation, Row
from ..types import row_group_key
from ..trace import CONTRACT_FILTERING
from .base import Operator, as_relation


def _check_compat(left: Relation, right: Relation) -> None:
    if len(left.schema) != len(right.schema):
        raise SchemaError(
            f"set operation over different arities: "
            f"{len(left.schema)} vs {len(right.schema)}"
        )


class _SetOp(Operator):
    """Shared base: both inputs are materialized at construction, so
    ``rows_in`` is charged in bulk when iteration starts."""

    trace_contract = CONTRACT_FILTERING

    left: Relation
    right: Relation

    def _note_inputs(self) -> None:
        span = self._span
        if span is not None:
            span.add("rows_in", len(self.left.rows) + len(self.right.rows))


class Union(_SetOp):
    """Set union; output schema is the left input's."""

    def __init__(self, left, right):
        self.left = as_relation(left)
        self.right = as_relation(right)
        _check_compat(self.left, self.right)
        self.schema = self.left.schema

    def _iterate(self) -> Iterator[Row]:
        self._note_inputs()
        seen: Set[tuple] = set()
        for rel in (self.left, self.right):
            for row in rel.rows:
                current_metrics().add("rows_scanned")
                key = row_group_key(row)
                if key not in seen:
                    seen.add(key)
                    self._emit()
                    yield row


class Intersect(_SetOp):
    """Set intersection."""

    def __init__(self, left, right):
        self.left = as_relation(left)
        self.right = as_relation(right)
        _check_compat(self.left, self.right)
        self.schema = self.left.schema

    def _iterate(self) -> Iterator[Row]:
        self._note_inputs()
        right_keys = {row_group_key(r) for r in self.right.rows}
        emitted: Set[tuple] = set()
        for row in self.left.rows:
            current_metrics().add("rows_scanned")
            key = row_group_key(row)
            if key in right_keys and key not in emitted:
                emitted.add(key)
                self._emit()
                yield row


class Difference(_SetOp):
    """Set difference (left minus right)."""

    def __init__(self, left, right):
        self.left = as_relation(left)
        self.right = as_relation(right)
        _check_compat(self.left, self.right)
        self.schema = self.left.schema

    def _iterate(self) -> Iterator[Row]:
        self._note_inputs()
        right_keys = {row_group_key(r) for r in self.right.rows}
        emitted: Set[tuple] = set()
        for row in self.left.rows:
            current_metrics().add("rows_scanned")
            key = row_group_key(row)
            if key not in right_keys and key not in emitted:
                emitted.add(key)
                self._emit()
                yield row
