"""Execution tracing: a span tree over the physical operators.

``EXPLAIN ANALYZE`` support.  When a :func:`tracing` context is active,
every physical operator (joins, scans, filters, ``nest``, linking and
pseudo selections, the fused single-pass pipeline, the baselines'
iteration loops) opens a :class:`Span` for the duration of its work and
records

* wall-clock time (inclusive of children),
* input/output row counts (``rows_in`` / ``rows_out``),
* operator-specific extremes (peak group cardinality of a nest,
  hash-table build sizes), and
* the ambient :class:`~repro.engine.metrics.Metrics` delta over its
  window — so null-padded-tuple counts, hash builds/probes, sort sizes
  and predicate evaluations are attributed per operator without any
  extra per-row bookkeeping.

Spans form a tree mirroring the dynamic operator nesting: an operator's
input pipeline appears as its children.  The tracer is **observation
only** — results and :class:`Metrics` counters are bit-identical with
tracing on or off — and costs a single ``is None`` check per operator
iteration when disabled.

Invariants (checked by :func:`trace_invariant_violations` and the
``tests/core/test_trace_invariants.py`` suite):

* every span is closed, timestamps are ordered, counters non-negative;
* cardinality contracts hold per operator class: *preserving* operators
  (projection, sort, rename, pseudo selection — which pads instead of
  dropping) emit exactly as many rows as they consume, *filtering*
  operators at most as many, *expanding* operators (outer joins) at
  least as many;
* an operator's ``rows_in`` equals the summed ``rows_out`` of the child
  operator spans that feed it (the pull-model row-accounting check that
  catches a mis-counting operator even when row *values* are right);
* the root span's ``rows_out`` equals the result cardinality;
* summed per-span metric deltas reconcile with the ambient ``Metrics``
  totals of the execution (:func:`reconcile_with_metrics`).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .metrics import current_metrics

#: version 2 added ``kind="governor"`` spans (resource governance /
#: degradation events) and the ``aborted`` span attribute; version 3
#: added ``kind="planner"`` spans (the cost-based planner's decision
#: record: candidates, estimated costs/cardinalities, the chosen
#: strategy); version 4 added ``kind="spill"`` spans (out-of-core
#: hash-join/nest passes: bytes spilled, partition counts, recursion
#: depth).  Earlier documents remain valid — all changes are purely
#: additive.
TRACE_FORMAT_VERSION = 4
SUPPORTED_TRACE_VERSIONS = (1, 2, 3, TRACE_FORMAT_VERSION)

#: cardinality contracts — see module docstring
CONTRACT_FILTERING = "filtering"  # rows_out <= rows_in
CONTRACT_PRESERVING = "preserving"  # rows_out == rows_in
CONTRACT_EXPANDING = "expanding"  # rows_out >= rows_in

_CONTRACTS = (CONTRACT_FILTERING, CONTRACT_PRESERVING, CONTRACT_EXPANDING)

#: span kind of one partition's work under a parallel operator.  Morsel
#: spans are *not* operator inputs: the pull-model row-accounting check
#: skips them, since the partitions of one parallel operator collectively
#: re-describe the parent's own input rather than feeding it.
KIND_MORSEL = "morsel"

#: span kind of resource-governance events: the wrapper span tagging a
#: governed execution with its limits, and the ``degrade`` span that
#: contains a sequential retry after a parallel failure.  Governor spans
#: are bookkeeping, not operators: the row-accounting and contract
#: checks skip them, but their children (the retried operator tree) are
#: checked as usual.
KIND_GOVERNOR = "governor"

#: span kind of the cost-based planner's decision record: one
#: ``planner`` span under the root ``execute`` span, with one
#: ``candidate[...]`` child per enumerated strategy.  Planner spans are
#: bookkeeping, not operators — the row-accounting and contract checks
#: skip them — but they make every ``auto`` choice a durable, renderable
#: artifact of the trace.
KIND_PLANNER = "planner"

#: span kind of one out-of-core pass: a spilling hash-join build or nest
#: grouping run that diverted to disk partitions
#: (:mod:`repro.engine.spill`).  Spill spans are bookkeeping, not
#: operators — the row-accounting and contract checks skip them (their
#: per-partition children collectively re-describe the wrapped
#: operator's own input, exactly like morsels) — and they carry the
#: ``bytes_spilled`` / ``partitions`` / ``depth`` counters the bench
#: artifacts and the governor's spill accounting are validated against.
KIND_SPILL = "spill"

#: self-metrics worth surfacing on an EXPLAIN ANALYZE line, in order
RENDER_METRICS = (
    "hash_build_rows",
    "hash_probes",
    "index_probes",
    "index_rows_fetched",
    "rows_sorted",
    "rows_nested",
    "linking_evals",
    "predicate_evals",
    "null_padded_rows",
)


class Span:
    """One operator's (or phase's) traced execution window."""

    __slots__ = (
        "name",
        "kind",
        "attrs",
        "contract",
        "counters",
        "children",
        "t_start",
        "t_end",
        "_m0",
        "metrics_inclusive",
    )

    def __init__(
        self,
        name: str,
        kind: str = "operator",
        attrs: Optional[Dict[str, Any]] = None,
        contract: Optional[str] = None,
    ):
        self.name = name
        self.kind = kind
        self.attrs = attrs or {}
        self.contract = contract
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.t_start = time.perf_counter()
        self.t_end: Optional[float] = None
        self._m0 = dict(current_metrics().counters)
        #: ambient Metrics delta over [t_start, t_end], children included
        self.metrics_inclusive: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def add(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def mark_aborted(self, reason: str = "error") -> None:
        """Tag the span as unwound by an exception.

        An aborted span's counters describe *partial* work (an operator
        may have recorded ``rows_in`` but died before ``rows_out``), so
        the cardinality-contract and row-accounting invariants skip it —
        that is what keeps partial span trees from failed or degraded
        executions valid.
        """
        self.attrs["aborted"] = reason

    @property
    def aborted(self) -> bool:
        return "aborted" in self.attrs

    def set(self, name: str, value: int) -> None:
        self.counters[name] = value

    def set_max(self, name: str, value: int) -> None:
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def _close(self) -> None:
        if self.t_end is not None:
            return
        self.t_end = time.perf_counter()
        now = current_metrics().counters
        m0 = self._m0
        delta = {}
        for key, value in now.items():
            d = value - m0.get(key, 0)
            if d:
                delta[key] = d
        self.metrics_inclusive = delta

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    @property
    def wall_seconds(self) -> float:
        end = self.t_end if self.t_end is not None else time.perf_counter()
        return end - self.t_start

    def self_metrics(self) -> Dict[str, int]:
        """Ambient metrics delta attributed to this span alone.

        Inclusive delta minus the children's inclusive deltas.  Because
        every child window is contained in its parent's, summing
        ``self_metrics`` over a whole span tree telescopes back to the
        root's inclusive delta — the reconciliation invariant.
        """
        out = dict(self.metrics_inclusive)
        for child in self.children:
            for key, value in child.metrics_inclusive.items():
                out[key] = out.get(key, 0) - value
        return {k: v for k, v in out.items() if v}

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "attrs": {k: str(v) for k, v in self.attrs.items()},
            "contract": self.contract,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "metrics": self.self_metrics(),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Span({self.name!r}, {inner})"


class Tracer:
    """Builds the span tree; installed as the ambient tracer by
    :func:`tracing`."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def open(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        kind: str = "operator",
        contract: Optional[str] = None,
    ) -> Span:
        span = Span(name, kind=kind, attrs=attrs, contract=contract)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def close(self, span: Span) -> None:
        """Close *span*, closing any deeper spans still open.

        Operators normally unwind in LIFO order (generator exhaustion),
        but an abandoned iterator (e.g. the input of a ``Limit`` that
        stopped early) may be finalized late, after its parent already
        closed over it — closing is idempotent and never pops spans that
        are not on *span*'s own branch.
        """
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                top._close()
                if top is span:
                    return
        span._close()

    @contextmanager
    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        kind: str = "operator",
        contract: Optional[str] = None,
    ) -> Iterator[Span]:
        span = self.open(name, attrs, kind=kind, contract=contract)
        try:
            yield span
        except BaseException as exc:
            span.mark_aborted(type(exc).__name__)
            raise
        finally:
            self.close(span)

    def finish(self) -> None:
        while self._stack:
            self._stack.pop()._close()


class Trace:
    """The result of one :func:`tracing` scope: a forest of span trees
    (one root per traced execution)."""

    def __init__(self, tracer: Tracer):
        self._tracer = tracer

    @property
    def roots(self) -> List[Span]:
        return self._tracer.roots

    @property
    def root(self) -> Optional[Span]:
        """The single root span, or None when empty/ambiguous."""
        return self.roots[0] if len(self.roots) == 1 else None

    def spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans() if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "spans": [root.to_dict() for root in self.roots],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------- #
# the ambient tracer
# ---------------------------------------------------------------------- #

# Thread-local: a span stack is single-threaded by construction, so each
# thread sees only the tracer it installed itself.  Morsel workers of the
# parallel executor trace into their own local Tracer and the scheduler
# grafts the resulting span trees under the dispatching operator's span
# (kind="morsel") after the workers join.
_ambient = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer of this thread, or None when tracing is off."""
    return getattr(_ambient, "tracer", None)


@contextmanager
def tracing() -> Iterator[Trace]:
    """Run a block with span tracing enabled, yielding the :class:`Trace`.

    >>> from repro.engine.trace import tracing
    >>> with tracing() as trace:
    ...     pass  # run strategies / operators
    >>> trace.roots
    []
    """
    previous = getattr(_ambient, "tracer", None)
    tracer = Tracer()
    _ambient.tracer = tracer
    try:
        yield Trace(tracer)
    finally:
        _ambient.tracer = previous
        tracer.finish()


@contextmanager
def op_span(
    name: str,
    kind: str = "operator",
    contract: Optional[str] = None,
    **attrs: Any,
) -> Iterator[Optional[Span]]:
    """Open a span if tracing is active; yields None otherwise.

    The convenience wrapper for non-:class:`Operator` call sites (nest,
    linking selections, phase markers): call sites guard their recording
    with ``if span is not None``.
    """
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    span = tracer.open(name, attrs, kind=kind, contract=contract)
    try:
        yield span
    except BaseException as exc:
        span.mark_aborted(type(exc).__name__)
        raise
    finally:
        tracer.close(span)


# ---------------------------------------------------------------------- #
# invariants
# ---------------------------------------------------------------------- #


def trace_invariant_violations(
    trace: Trace, result_cardinality: Optional[int] = None
) -> List[str]:
    """Check the span-tree invariants; returns violation messages.

    When *result_cardinality* is given, the root span of each traced
    execution must have emitted exactly that many rows.
    """
    violations: List[str] = []
    for root in trace.roots:
        if result_cardinality is not None and root.kind == "root":
            out = root.counters.get("rows_out")
            if out != result_cardinality:
                violations.append(
                    f"root span {root.name!r} rows_out={out} but the "
                    f"result has {result_cardinality} row(s)"
                )
        for span in root.walk():
            violations.extend(_span_violations(span))
    return violations


def _span_violations(span: Span) -> List[str]:
    out: List[str] = []
    where = f"span {span.name!r}"
    if not span.closed:
        out.append(f"{where} was never closed")
    for name, value in sorted(span.counters.items()):
        if value < 0:
            out.append(f"{where} counter {name!r} is negative ({value})")
    if span.aborted:
        # partial work: the structural checks below assume the operator
        # ran to completion, which an aborted span by definition did not
        return out
    rows_in = span.counters.get("rows_in")
    rows_out = span.counters.get("rows_out", 0)
    if span.contract is not None and rows_in is not None:
        if span.contract not in _CONTRACTS:
            out.append(f"{where} has unknown contract {span.contract!r}")
        elif span.contract == CONTRACT_FILTERING and rows_out > rows_in:
            out.append(
                f"{where} is filtering but emitted {rows_out} row(s) "
                f"from {rows_in}"
            )
        elif span.contract == CONTRACT_PRESERVING and rows_out != rows_in:
            out.append(
                f"{where} is row-preserving but emitted {rows_out} "
                f"row(s) from {rows_in}"
            )
        elif span.contract == CONTRACT_EXPANDING and rows_out < rows_in:
            out.append(
                f"{where} is expanding but emitted {rows_out} row(s) "
                f"from {rows_in}"
            )
    # pull-model row accounting: the rows an operator consumed must match
    # the rows its input operator spans report having produced.
    if span.kind == "operator" and rows_in is not None:
        inputs = [c for c in span.children if c.kind == "operator"]
        if inputs:
            fed = sum(c.counters.get("rows_out", 0) for c in inputs)
            if fed != rows_in:
                out.append(
                    f"{where} consumed rows_in={rows_in} but its input "
                    f"span(s) produced {fed}"
                )
    return out


def reconcile_with_metrics(
    trace: Trace, metrics_snapshot: Dict[str, int]
) -> List[str]:
    """Check that summed span metric deltas match the ``Metrics`` totals.

    *metrics_snapshot* is the counter dict of the :class:`Metrics` scope
    that covered exactly the traced execution(s) — every counter charged
    during the scope must be attributable to some span.
    """
    summed: Dict[str, int] = {}
    for span in trace.spans():
        for key, value in span.self_metrics().items():
            summed[key] = summed.get(key, 0) + value
    violations = []
    for key in sorted(set(summed) | set(metrics_snapshot)):
        a = summed.get(key, 0)
        b = metrics_snapshot.get(key, 0)
        if a != b:
            violations.append(
                f"summed span deltas for {key!r} = {a} but Metrics "
                f"recorded {b}"
            )
    return violations


# ---------------------------------------------------------------------- #
# rendering (EXPLAIN ANALYZE) and JSON validation
# ---------------------------------------------------------------------- #


def _format_attrs(attrs: Dict[str, Any], width: int = 48) -> str:
    if not attrs:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in attrs.items())
    if len(body) > width:
        body = body[: width - 1] + "…"
    return f"({body})"


def render_span(
    span: Span, timings: bool = True, depth: int = 0, lines: Optional[List[str]] = None
) -> List[str]:
    lines = lines if lines is not None else []
    parts = ["  " * depth + span.name + _format_attrs(span.attrs)]
    rows_in = span.counters.get("rows_in")
    if rows_in is not None:
        parts.append(f"rows={rows_in}→{span.counters.get('rows_out', 0)}")
    elif "rows_out" in span.counters:
        parts.append(f"rows={span.counters['rows_out']}")
    for name, value in sorted(span.counters.items()):
        if name not in ("rows_in", "rows_out"):
            parts.append(f"{name}={value}")
    self_metrics = span.self_metrics()
    for name in RENDER_METRICS:
        if name in self_metrics:
            parts.append(f"{name}={self_metrics[name]}")
    if timings:
        parts.append(f"{span.wall_seconds * 1000:.2f}ms")
    lines.append("  ".join(parts))
    for child in span.children:
        render_span(child, timings=timings, depth=depth + 1, lines=lines)
    return lines


def render_trace(trace: Trace, timings: bool = True) -> str:
    """The annotated plan tree, one line per span (EXPLAIN ANALYZE)."""
    lines: List[str] = []
    for root in trace.roots:
        render_span(root, timings=timings, lines=lines)
    return "\n".join(lines)


def validate_trace_dict(data: Any) -> List[str]:
    """Structural validation of a serialized trace (``Trace.to_dict``).

    Mirrors ``schemas/trace.schema.json`` without requiring the
    ``jsonschema`` package; returns a list of problems (empty = valid).
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["trace document must be an object"]
    if data.get("version") not in SUPPORTED_TRACE_VERSIONS:
        problems.append(
            f"version must be one of {SUPPORTED_TRACE_VERSIONS}, "
            f"got {data.get('version')!r}"
        )
    spans = data.get("spans")
    if not isinstance(spans, list):
        return problems + ["'spans' must be a list"]

    def check_span(node: Any, path: str) -> None:
        if not isinstance(node, dict):
            problems.append(f"{path}: span must be an object")
            return
        if not isinstance(node.get("name"), str) or not node.get("name"):
            problems.append(f"{path}: 'name' must be a non-empty string")
        if not isinstance(node.get("kind"), str):
            problems.append(f"{path}: 'kind' must be a string")
        contract = node.get("contract")
        if contract is not None and contract not in _CONTRACTS:
            problems.append(f"{path}: unknown contract {contract!r}")
        wall = node.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(f"{path}: 'wall_seconds' must be a number >= 0")
        for field in ("counters", "metrics"):
            bundle = node.get(field)
            if not isinstance(bundle, dict):
                problems.append(f"{path}: {field!r} must be an object")
                continue
            for key, value in bundle.items():
                if not isinstance(key, str) or not isinstance(value, int):
                    problems.append(
                        f"{path}: {field}[{key!r}] must map str -> int"
                    )
        attrs = node.get("attrs")
        if not isinstance(attrs, dict):
            problems.append(f"{path}: 'attrs' must be an object")
        children = node.get("children")
        if not isinstance(children, list):
            problems.append(f"{path}: 'children' must be a list")
            return
        for i, child in enumerate(children):
            check_span(child, f"{path}.children[{i}]")

    for i, root in enumerate(spans):
        check_span(root, f"spans[{i}]")
    return problems
