"""Secondary indexes: hash (equality) and sorted (range).

The paper's "System A" baseline leans on B+-tree indexes during nested
iteration ("lineitem is accessed by index rowid, which is more efficient
than fully accessed").  We provide the same capability: an index maps key
values to row ids of a materialized relation; probes are charged to the
metrics so that index-assisted plans are cheaper than scans by the same
ratio the paper relies on.

NULL keys are never indexed (as in real systems, a NULL never matches an
equality or range probe).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import CatalogError
from .metrics import current_metrics
from .relation import Relation, Row
from .types import NULL, SqlValue, is_null, row_group_key, sort_key


class HashIndex:
    """Equality index on one or more columns of a materialized relation."""

    def __init__(self, relation: Relation, refs: Sequence[str], name: str = ""):
        self.relation = relation
        self.refs: Tuple[str, ...] = tuple(refs)
        self.name = name or f"hash({','.join(refs)})"
        self._positions = relation.schema.indices_of(refs)
        self._buckets: Dict[tuple, List[int]] = {}
        for rid, row in enumerate(relation.rows):
            key_values = tuple(row[i] for i in self._positions)
            if any(is_null(v) for v in key_values):
                continue
            self._buckets.setdefault(row_group_key(key_values), []).append(rid)

    def __len__(self) -> int:
        return len(self._buckets)

    def probe(self, values: Sequence[SqlValue]) -> List[Row]:
        """Rows whose key equals *values* (empty when any value is NULL)."""
        current_metrics().add("index_probes")
        if any(is_null(v) for v in values):
            return []
        rids = self._buckets.get(row_group_key(tuple(values)), [])
        current_metrics().add("index_rows_fetched", len(rids))
        return [self.relation.rows[rid] for rid in rids]

    def probe_ids(self, values: Sequence[SqlValue]) -> List[int]:
        """Row ids (positions) for a key, without fetching."""
        current_metrics().add("index_probes")
        if any(is_null(v) for v in values):
            return []
        return self._buckets.get(row_group_key(tuple(values)), [])


class SortedIndex:
    """Range index on a single column, built by sorting (key, rid) pairs."""

    def __init__(self, relation: Relation, ref: str, name: str = ""):
        self.relation = relation
        self.ref = ref
        self.name = name or f"sorted({ref})"
        pos = relation.schema.index_of(ref)
        pairs = [
            (sort_key(row[pos]), rid)
            for rid, row in enumerate(relation.rows)
            if not is_null(row[pos])
        ]
        pairs.sort()
        self._keys = [p[0] for p in pairs]
        self._rids = [p[1] for p in pairs]

    def range(
        self,
        low: Optional[SqlValue] = None,
        high: Optional[SqlValue] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[Row]:
        """Rows with key in the given (optionally open-ended) range."""
        current_metrics().add("index_probes")
        lo_i = 0
        hi_i = len(self._keys)
        if low is not None and not is_null(low):
            k = sort_key(low)
            lo_i = bisect.bisect_left(self._keys, k) if low_inclusive else bisect.bisect_right(self._keys, k)
        if high is not None and not is_null(high):
            k = sort_key(high)
            hi_i = bisect.bisect_right(self._keys, k) if high_inclusive else bisect.bisect_left(self._keys, k)
        rids = self._rids[lo_i:hi_i]
        current_metrics().add("index_rows_fetched", len(rids))
        return [self.relation.rows[rid] for rid in rids]

    def __len__(self) -> int:
        return len(self._keys)
