"""Scalar and predicate expressions with SQL three-valued logic.

Expressions form a small immutable AST.  They are evaluated against an
:class:`EvalContext`, a stack of ``(schema, row)`` frames: the innermost
frame is the current operator's row, outer frames carry correlation
bindings (the tuple-iteration baseline pushes one frame per query block,
exactly mirroring SQL's scoping rules).

Predicates evaluate to :class:`~repro.engine.types.TriBool`; value
expressions evaluate to SQL values.  A WHERE clause keeps a row only when
its predicate is *definitely* TRUE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..errors import ExpressionError, SchemaError
from .schema import Schema
from .types import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    SqlValue,
    TriBool,
    is_null,
    negate_op,
    sql_compare,
    tri_all,
    tri_any,
)

Row = Tuple[SqlValue, ...]


class EvalContext:
    """A stack of ``(schema, row)`` frames, innermost last.

    Column references resolve innermost-first, which implements SQL
    correlation: a subquery's predicate ``R.D = S.G`` finds ``S.G`` in its
    own frame and ``R.D`` in the enclosing block's frame.
    """

    __slots__ = ("frames",)

    def __init__(self, frames: Optional[List[Tuple[Schema, Row]]] = None):
        self.frames: List[Tuple[Schema, Row]] = frames or []

    @staticmethod
    def single(schema: Schema, row: Row) -> "EvalContext":
        return EvalContext([(schema, row)])

    def push(self, schema: Schema, row: Row) -> "EvalContext":
        """A new context with one more (innermost) frame."""
        return EvalContext(self.frames + [(schema, row)])

    def with_row(self, schema: Schema, row: Row) -> "EvalContext":
        """Replace the innermost frame (hot path during scans)."""
        return EvalContext(self.frames[:-1] + [(schema, row)])

    def lookup(self, ref: str) -> SqlValue:
        """Resolve *ref* innermost-first; raise if nowhere resolvable."""
        for schema, row in reversed(self.frames):
            try:
                return row[schema.index_of(ref)]
            except SchemaError:
                continue
        raise ExpressionError(f"unresolved column reference {ref!r}")

    def resolvable(self, ref: str) -> bool:
        for schema, _row in reversed(self.frames):
            if schema.has(ref):
                return True
        return False


class Expr:
    """Base class of all expressions."""

    def evaluate(self, ctx: EvalContext) -> Union[SqlValue, TriBool]:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column references appearing in the expression."""
        out: List[str] = []
        self._collect(out)
        return out

    def _collect(self, out: List[str]) -> None:
        pass

    # -- small combinator API so plans read naturally ------------------- #

    def and_(self, other: "Expr") -> "Expr":
        return And(self, other)

    def or_(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def negate(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Literal(Expr):
    """A constant SQL value."""

    value: SqlValue

    def evaluate(self, ctx: EvalContext) -> SqlValue:
        return self.value

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass(frozen=True)
class Col(Expr):
    """A column reference, qualified (``"R.A"``) or bare (``"A"``)."""

    ref: str

    def evaluate(self, ctx: EvalContext) -> SqlValue:
        return ctx.lookup(self.ref)

    def _collect(self, out: List[str]) -> None:
        out.append(self.ref)

    def __repr__(self) -> str:
        return f"Col({self.ref})"


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` with op in ``= <> < <= > >=`` (3VL result)."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TriBool:
        return sql_compare(self.op, _value(self.left, ctx), _value(self.right, ctx))

    def _collect(self, out: List[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def negated(self) -> "Comparison":
        """The comparison with the logically negated operator."""
        return Comparison(negate_op(self.op), self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TriBool:
        return _truth(self.left, ctx) & _truth(self.right, ctx)

    def _collect(self, out: List[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> TriBool:
        return _truth(self.left, ctx) | _truth(self.right, ctx)

    def _collect(self, out: List[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, ctx: EvalContext) -> TriBool:
        return ~_truth(self.operand, ctx)

    def _collect(self, out: List[str]) -> None:
        self.operand._collect(out)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL`` — always two-valued."""

    operand: Expr
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TriBool:
        null = is_null(_value(self.operand, ctx))
        return TriBool.from_bool(null != self.negated)

    def _collect(self, out: List[str]) -> None:
        self.operand._collect(out)

    def __repr__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {op})"


@dataclass(frozen=True)
class Between(Expr):
    """``operand BETWEEN low AND high`` (inclusive, 3VL)."""

    operand: Expr
    low: Expr
    high: Expr

    def evaluate(self, ctx: EvalContext) -> TriBool:
        v = _value(self.operand, ctx)
        lo = _value(self.low, ctx)
        hi = _value(self.high, ctx)
        return sql_compare(">=", v, lo) & sql_compare("<=", v, hi)

    def _collect(self, out: List[str]) -> None:
        self.operand._collect(out)
        self.low._collect(out)
        self.high._collect(out)


@dataclass(frozen=True)
class InList(Expr):
    """``operand [NOT] IN (v1, v2, ...)`` with literal values (3VL)."""

    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def evaluate(self, ctx: EvalContext) -> TriBool:
        v = _value(self.operand, ctx)
        result = tri_any(
            sql_compare("=", v, _value(item, ctx)) for item in self.items
        )
        return ~result if self.negated else result

    def _collect(self, out: List[str]) -> None:
        self.operand._collect(out)
        for item in self.items:
            item._collect(out)


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic; NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, ctx: EvalContext) -> SqlValue:
        a = _value(self.left, ctx)
        b = _value(self.right, ctx)
        if is_null(a) or is_null(b):
            return NULL
        try:
            return _ARITH[self.op](a, b)
        except KeyError:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")
        except ZeroDivisionError:
            return NULL

    def _collect(self, out: List[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)


TRUE_EXPR: Expr = Literal(True)


def _value(expr: Expr, ctx: EvalContext) -> SqlValue:
    """Evaluate *expr* as a value; TriBool results map to booleans/NULL."""
    result = expr.evaluate(ctx)
    if isinstance(result, TriBool):
        if result is TRUE:
            return True
        if result is FALSE:
            return False
        return NULL
    return result


def _truth(expr: Expr, ctx: EvalContext) -> TriBool:
    """Evaluate *expr* as a predicate; values coerce via SQL truth rules."""
    from .logic import two_valued

    result = expr.evaluate(ctx)
    if isinstance(result, TriBool):
        return result
    if is_null(result):
        return FALSE if two_valued() else UNKNOWN
    if isinstance(result, bool):
        return TriBool.from_bool(result)
    raise ExpressionError(f"expression {expr!r} is not a predicate: {result!r}")


def truth(expr: Expr, ctx: EvalContext) -> TriBool:
    """Public wrapper over :func:`_truth` for operators and strategies."""
    return _truth(expr, ctx)


def conjoin(predicates: Sequence[Expr]) -> Expr:
    """AND together a sequence of predicates (empty -> TRUE literal)."""
    preds = [p for p in predicates if p is not None]
    if not preds:
        return TRUE_EXPR
    result = preds[0]
    for p in preds[1:]:
        result = And(result, p)
    return result


def split_conjuncts(expr: Expr) -> List[Expr]:
    """Flatten a tree of ANDs into a list of conjuncts."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    if expr is TRUE_EXPR:
        return []
    return [expr]


def eq(left: str, right: str) -> Comparison:
    """Shorthand equality predicate between two column refs."""
    return Comparison("=", Col(left), Col(right))


def cmp(left: str, op: str, value: SqlValue) -> Comparison:
    """Shorthand comparison between a column ref and a literal."""
    return Comparison(op, Col(left), Literal(value))
