"""Grace-style spill-to-disk for the two memory cliffs.

The governor's memory budget used to be a hard verdict: a hash-join
build or a nest grouping whose accounted bytes crossed
``memory_limit_mb`` raised :class:`~repro.errors.ResourceExhaustedError`.
When the governor also carries a ``spill_dir``, the budget becomes a
*spill trigger* instead: the spill-aware kernels ask
:meth:`~repro.engine.governor.ResourceGovernor.should_spill` before
materializing, and divert here when the estimate would breach the
budget.

Algorithm (classic Grace hash join, adapted to the batch kernels):

1. factorize both sides' join keys into one dense int64 code domain
   (:func:`~repro.engine.parallel.joint_codes` — the same codes the
   morsel scheduler partitions on, so ``code % k`` keeps matching rows
   together and NULL codes never match);
2. scatter both sides into ``k`` disk partitions — temp column files
   (one raw ``.npy`` per column + validity) under a fresh directory in
   ``spill_dir``;
3. join each partition pair with the ordinary in-memory kernel, reading
   the partition columns back *memory-mapped* so only that partition's
   build structure and output are heap-resident; the scratch charge is
   released after each partition;
4. recurse on skew: a partition whose estimate still breaches the
   budget re-enters the spilling kernel (its keys re-factorize into a
   fresh code domain, so it splits again) up to :data:`MAX_SPILL_DEPTH`
   levels, after which it runs in memory;
5. concatenate the partition outputs (bag semantics — cross-partition
   order is irrelevant, and root ORDER BY applies later anyway).

Nest grouping spills the same way, except only one input is scattered
and groups stay whole per partition (rows with equal grouping codes
share ``code % k``), so each partition's
:func:`~repro.engine.vector.nestlink.nest_link` sees complete groups.

Every pass is wrapped in a ``kind='spill'`` trace span (format v4)
recording ``bytes_spilled`` / ``partitions`` / ``depth``, and the
governor's ``record_spill`` account feeds the bench artifacts.  Temp
files are removed in a ``finally`` even when a partition write fails —
the ``REPRO_FAULT=spill_io`` injection proves exactly that path.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpillError
from .governor import (
    EST_BYTES_PER_VALUE,
    ResourceGovernor,
    batch_nbytes,
    charge_batch,
    current_governor,
    maybe_spill_io_failure,
)
from .trace import KIND_SPILL, op_span

#: recursion cap for skewed partitions; beyond it the partition runs in
#: memory (its charge may then legitimately exhaust the budget).
MAX_SPILL_DEPTH = 4

#: ceiling on the fan-out of one spill pass
MAX_PARTITIONS = 64

_depth = threading.local()


def _current_depth() -> int:
    return getattr(_depth, "value", 0)


# --------------------------------------------------------------------- #
# Estimates (mirror the charges the in-memory kernels would make)
# --------------------------------------------------------------------- #


def est_join_bytes(left, right, n_keys: int) -> int:
    """Bytes the in-memory join would account: build + output."""
    width = len(left.columns) + len(right.columns)
    out_rows = max(len(left), len(right))
    return (
        len(right) * max(1, n_keys) * EST_BYTES_PER_VALUE
        + out_rows * width * 8
    )


def est_nest_bytes(batch, n_by: int) -> int:
    """Bytes the in-memory nest grouping would account."""
    return len(batch) * max(1, n_by) * EST_BYTES_PER_VALUE


def _n_partitions(est_bytes: int, governor: ResourceGovernor) -> int:
    budget = max(1, (governor.memory_limit_bytes or 1) // 2)
    k = -(-int(est_bytes) // budget)  # ceil division
    return max(2, min(MAX_PARTITIONS, k))


def _spillable(batch) -> bool:
    """Raw ``np.save`` round-trips every kind except ``obj``."""
    return all(c.kind != "obj" for c in batch.columns)


# --------------------------------------------------------------------- #
# Temp column files
# --------------------------------------------------------------------- #


def _write_partition(tmp: str, tag: str, batch, idx: np.ndarray) -> int:
    """Scatter *batch* rows at *idx* into ``tmp/tag`` column files.

    Returns the bytes written.  The injected ``spill_io`` fault fires
    before the first file of the partition, leaving earlier partitions
    on disk — the caller's ``finally`` must clean those up.
    """
    maybe_spill_io_failure()
    d = os.path.join(tmp, tag)
    os.makedirs(d)
    total = 0
    try:
        for i, col in enumerate(batch.columns):
            data = col.data[idx]
            valid = col.valid[idx]
            np.save(os.path.join(d, f"c{i}.npy"), data, allow_pickle=False)
            np.save(
                os.path.join(d, f"c{i}.valid.npy"), valid, allow_pickle=False
            )
            total += int(data.nbytes) + int(valid.nbytes)
    except OSError as exc:
        raise SpillError(
            f"spill partition write failed under {tmp!r}: {exc}"
        ) from exc
    return total


def _read_partition(tmp: str, tag: str, schema, kinds: Sequence[str]):
    """A partition back as a batch of memory-mapped vectors."""
    from .vector.batch import Batch
    from .vector.column import Vector

    d = os.path.join(tmp, tag)
    vectors = []
    n = 0
    for i, kind in enumerate(kinds):
        data = np.load(
            os.path.join(d, f"c{i}.npy"), mmap_mode="r", allow_pickle=False
        )
        valid = np.load(
            os.path.join(d, f"c{i}.valid.npy"), mmap_mode="r",
            allow_pickle=False,
        )
        n = len(data)
        vectors.append(Vector(kind, data, valid))
    return Batch(schema, vectors, n)


def _make_tmp(governor: ResourceGovernor) -> str:
    # Partition files live inside the governor's per-execution
    # workspace (``spill_dir/exec-<pid>-<n>/``), never directly in the
    # shared spill_dir — concurrent executions pointed at one scratch
    # directory cannot collide, and the planner sweeps the whole
    # workspace when the execution ends.
    try:
        root = governor.spill_workspace()
        return tempfile.mkdtemp(prefix="repro-spill-", dir=root)
    except OSError as exc:
        raise SpillError(
            f"cannot create spill directory under "
            f"{governor.spill_dir!r}: {exc}"
        ) from exc


def _concat_outputs(parts: List):
    """Concatenate partition outputs (one ``np.concatenate`` per column).

    Outputs of one spilled operator share schema and (normally) column
    kinds; a kind mismatch (an all-NULL partition that degraded to a
    different layout) falls back to the pairwise promoting vstack.
    """
    from .vector.batch import Batch
    from .vector.column import Vector

    parts = [p for p in parts if p is not None and len(p)]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    columns = []
    for i in range(len(first.columns)):
        vecs = [b.columns[i] for b in parts]
        kind = vecs[0].kind
        if all(v.kind == kind for v in vecs):
            columns.append(
                Vector(
                    kind,
                    np.concatenate([v.data for v in vecs]),
                    np.concatenate([v.valid for v in vecs]),
                )
            )
        else:
            acc = vecs[0]
            for v in vecs[1:]:
                acc = Vector.vstack(acc, v)
            columns.append(acc)
    return Batch(first.schema, columns, sum(len(b) for b in parts))


# --------------------------------------------------------------------- #
# Spilling hash join
# --------------------------------------------------------------------- #


def maybe_spill_hash_join(
    left,
    right,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual,
    outer: bool,
):
    """Divert a hash join to disk partitions when the budget demands it.

    Returns the joined batch, or ``None`` when no spill applies (no
    governor/spill_dir, the estimate fits, keys the code factorization
    cannot normalize, object columns, or the recursion cap) — the
    caller then proceeds with the ordinary in-memory kernel.
    """
    governor = current_governor()
    if governor is None or not left_keys:
        return None
    est = est_join_bytes(left, right, len(left_keys))
    if not governor.should_spill(est):
        return None
    depth = _current_depth()
    if depth >= MAX_SPILL_DEPTH:
        return None
    if not (_spillable(left) and _spillable(right)):
        return None
    from .parallel import hash_partitions, joint_codes

    codes = joint_codes(left, right, left_keys, right_keys)
    if codes is None:
        return None
    codes_l, codes_r = codes
    # one distinct non-NULL code cannot be split further — spilling
    # would loop on a single full-size partition
    if depth > 0 and len(np.unique(codes_r[codes_r >= 0])) <= 1:
        return None
    k = _n_partitions(est, governor)
    name = "spill-outer-hash-join" if outer else "spill-hash-join"
    from .vector import kernels

    join = kernels.left_outer_hash_join if outer else kernels.hash_join
    with op_span(
        name,
        kind=KIND_SPILL,
        on=", ".join(f"{l}={r}" for l, r in zip(left_keys, right_keys)),
    ) as span:
        tmp = _make_tmp(governor)
        outputs: List = []
        spilled = 0
        try:
            parts_l = hash_partitions(codes_l, k)
            parts_r = hash_partitions(codes_r, k)
            for p in range(k):
                spilled += _write_partition(tmp, f"l{p}", left, parts_l[p])
                spilled += _write_partition(tmp, f"r{p}", right, parts_r[p])
            governor.record_spill(spilled)
            kinds_l = [c.kind for c in left.columns]
            kinds_r = [c.kind for c in right.columns]
            for p in range(k):
                if len(parts_l[p]) == 0 and len(parts_r[p]) == 0:
                    continue
                # non-trivial partitions all run through the kernel, even
                # one-sided ones, so summed build/probe metrics stay
                # identical to the unspilled execution
                lp = _read_partition(tmp, f"l{p}", left.schema, kinds_l)
                rp = _read_partition(tmp, f"r{p}", right.schema, kinds_r)
                _depth.value = depth + 1
                try:
                    out = join(lp, rp, left_keys, right_keys, residual)
                finally:
                    _depth.value = depth
                # the partition's build scratch is gone; give it back
                governor.release(
                    len(rp) * max(1, len(right_keys)) * EST_BYTES_PER_VALUE
                )
                if len(out):
                    outputs.append(out)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        result = _concat_outputs(outputs)
        if result is None:
            result = _empty_join_output(left, right)
        elif len(outputs) > 1:
            # partition outputs die after the concat; net the account
            governor.release(sum(batch_nbytes(o) for o in outputs))
            charge_batch(result, "spilled join output")
        if span is not None:
            span.add("bytes_spilled", spilled)
            span.set("partitions", k)
            span.set("depth", depth)
            span.add("rows_in", len(left))
            span.add("rows_out", len(result))
    return result


def _empty_join_output(left, right):
    """A zero-row batch with the join's output layout."""
    from .vector.batch import Batch
    from .vector.column import Vector

    empty = np.empty(0, dtype=np.int64)
    return Batch.concat_columns(left.take(empty), right.take(empty))


# --------------------------------------------------------------------- #
# Spilling nest grouping
# --------------------------------------------------------------------- #


def _grouping_codes(batch, by: Sequence[str]) -> np.ndarray:
    """One int64 code per row; rows in the same group share a code.

    Mirrors the ``sorted`` method of
    :func:`~repro.engine.vector.kernels.group_ids` (per-column
    ``codes()`` chained through ``np.unique``) but charges nothing —
    partitioning is scratch the spill accounts separately.
    """
    cols = [batch.column(r).codes() for r in by]
    ids = cols[0]
    for c in cols[1:]:
        width = int(c.max(initial=0)) + 1
        _, inv = np.unique(ids * width + c, return_inverse=True)
        ids = np.asarray(inv, dtype=np.int64).reshape(-1)
    return np.asarray(ids, dtype=np.int64)


def maybe_spill_nest_link(
    batch,
    by: Sequence[str],
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
    nest_impl: str,
):
    """Divert a nest+link pass to disk partitions under budget pressure.

    Groups stay whole: rows with equal grouping codes land in the same
    partition, so each partition's in-memory ``nest_link`` computes
    exact per-group verdicts.  Returns ``None`` when no spill applies.
    """
    governor = current_governor()
    if governor is None or not by or len(batch) == 0:
        return None
    est = est_nest_bytes(batch, len(by))
    if not governor.should_spill(est):
        return None
    depth = _current_depth()
    if depth >= MAX_SPILL_DEPTH or not _spillable(batch):
        return None
    from .parallel import hash_partitions
    from .vector.nestlink import nest_link

    ids = _grouping_codes(batch, by)
    if len(np.unique(ids)) <= 1:
        return None  # one group: partitioning cannot shrink the pass
    k = _n_partitions(est, governor)
    with op_span(
        "spill-nest", kind=KIND_SPILL, by=",".join(by), impl=nest_impl
    ) as span:
        tmp = _make_tmp(governor)
        outputs: List = []
        spilled = 0
        try:
            parts = hash_partitions(ids, k)
            for p in range(k):
                spilled += _write_partition(tmp, f"n{p}", batch, parts[p])
            governor.record_spill(spilled)
            kinds = [c.kind for c in batch.columns]
            for p in range(k):
                bp = _read_partition(tmp, f"n{p}", batch.schema, kinds)
                _depth.value = depth + 1
                try:
                    out = nest_link(
                        bp, by, predicate, link, rid_ref, strict,
                        pad_refs, nest_impl,
                    )
                finally:
                    _depth.value = depth
                governor.release(
                    len(bp) * max(1, len(by)) * EST_BYTES_PER_VALUE
                )
                if len(out):
                    outputs.append(out)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        result = _concat_outputs(outputs)
        if result is None:
            # every partition filtered every group out: an empty batch
            # with the nest output's layout
            empty = np.empty(0, dtype=np.int64)
            result = nest_link(
                batch.take(empty), by, predicate, link, rid_ref, strict,
                pad_refs, nest_impl,
            )
        elif len(outputs) > 1:
            governor.release(sum(batch_nbytes(o) for o in outputs))
            charge_batch(result, "spilled nest output")
        if span is not None:
            span.add("bytes_spilled", spilled)
            span.set("partitions", k)
            span.set("depth", depth)
            span.add("rows_in", len(batch))
            span.add("rows_out", len(result))
    return result
