"""Session-scoped logic mode: SQL 3VL (default) or Libkin's 2VL.

Standard SQL evaluates predicates under Kleene three-valued logic:
comparisons involving NULL yield UNKNOWN, and a WHERE clause keeps only
rows whose predicate is definitely TRUE.  Libkin ("Handling SQL Nulls
with Two-Valued Logic") argues that the same queries can be evaluated
under plain two-valued logic by declaring every comparison with NULL to
be FALSE — ``IS [NOT] NULL`` remains the only way to observe a NULL.
On NULL-free data the two semantics coincide exactly; with NULLs they
diverge under explicit negation: ``NOT (x = y)`` and ``NOT (x IN S)``
become TRUE when ``x`` is NULL under 2VL (classical negation of a
FALSE atom) where 3VL leaves them UNKNOWN.  Atomic negative links —
``x NOT IN S``, ``θ ALL`` — do *not* diverge observably: the NULL
operand fails every comparison, and FALSE and UNKNOWN drop the row
alike.

The mode is carried in a :class:`contextvars.ContextVar` so that it is

* per-session — :class:`repro.session.Session` sets it around every
  execution, and cache keys include it;
* inherited by worker threads *explicitly* — the parallel backend runs
  morsels through closures built under the ambient mode, and the
  vectorized kernels consult it at comparison time, so a morsel pool
  never needs the variable itself.

Three kernels consult the flag, and only three — every other evaluator
is written in terms of them:

* :func:`repro.engine.types.sql_compare` (row comparisons),
* :func:`repro.engine.expressions._truth` (NULL-as-predicate coercion),
* :func:`repro.engine.vector.exprs.compare_vectors` (mask pairs, where
  2VL collapses ``false_mask`` to ``~true_mask``).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

#: The logic modes a session can select.
LOGIC_MODES = ("3vl", "2vl")

_logic_mode: ContextVar[str] = ContextVar("repro_logic_mode", default="3vl")


def current_logic() -> str:
    """The ambient logic mode: ``"3vl"`` (SQL standard) or ``"2vl"``."""
    return _logic_mode.get()


def two_valued() -> bool:
    """True when the ambient mode is Libkin two-valued logic."""
    return _logic_mode.get() == "2vl"


def validate_logic(logic: str) -> str:
    """Return *logic* normalized, or raise on an unknown mode."""
    from ..errors import InvalidArgumentError

    if not isinstance(logic, str) or logic.lower() not in LOGIC_MODES:
        raise InvalidArgumentError(
            f"unknown logic mode {logic!r}; expected one of {LOGIC_MODES}"
        )
    return logic.lower()


@contextlib.contextmanager
def logic_mode(logic: str) -> Iterator[None]:
    """Evaluate the enclosed block under the given logic mode."""
    token = _logic_mode.set(validate_logic(logic))
    try:
        yield
    finally:
        _logic_mode.reset(token)
