"""SQL value model and three-valued logic.

The engine stores SQL values as plain Python objects (``int``, ``float``,
``str``, :class:`datetime.date`) with a single distinguished singleton,
:data:`NULL`, standing for the SQL NULL marker.  We deliberately do *not*
use Python ``None`` so that "missing value" never gets confused with
"missing Python object", and so that NULLs survive round-trips through
containers that treat ``None`` specially.

Comparisons involving NULL yield :data:`UNKNOWN` under SQL's three-valued
logic (3VL), implemented by :class:`TriBool`.  Getting 3VL right is load
bearing for this reproduction: the paper's central claim is that classical
unnesting rewrites of ``ALL`` / ``NOT IN`` subqueries are *unsound* in the
presence of NULLs, and every strategy in this repository must agree with
tuple-iteration SQL semantics on NULL-heavy data.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Iterable, Union

from .logic import two_valued


class _SqlNull:
    """Singleton marker for SQL NULL.

    NULL is not equal to anything, including itself, under SQL semantics;
    however the *Python* object must still be usable in hash containers
    (e.g. to group identical rows during ``nest``), so Python-level
    ``__eq__`` is identity and ``__hash__`` is constant.  SQL-level
    comparison goes through :func:`compare` / :func:`sql_eq` instead.
    """

    _instance: "_SqlNull" = None

    def __new__(cls) -> "_SqlNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __reduce__(self):
        return (_SqlNull, ())

    def __bool__(self) -> bool:
        return False


#: The SQL NULL marker.  There is exactly one instance.
NULL = _SqlNull()

#: A SQL value as stored in rows.
SqlValue = Union[_SqlNull, int, float, str, bool, datetime.date]


def is_null(value: Any) -> bool:
    """Return True if *value* is the SQL NULL marker."""
    return value is NULL


class TriBool(enum.Enum):
    """SQL three-valued logic: TRUE, FALSE, UNKNOWN.

    The enum implements Kleene logic through ``&``, ``|`` and ``~`` so
    predicate evaluators can combine results without branching on UNKNOWN
    everywhere.
    """

    FALSE = 0
    TRUE = 1
    UNKNOWN = 2

    def __and__(self, other: "TriBool") -> "TriBool":
        if self is TriBool.FALSE or other is TriBool.FALSE:
            return TriBool.FALSE
        if self is TriBool.UNKNOWN or other is TriBool.UNKNOWN:
            return TriBool.UNKNOWN
        return TriBool.TRUE

    def __or__(self, other: "TriBool") -> "TriBool":
        if self is TriBool.TRUE or other is TriBool.TRUE:
            return TriBool.TRUE
        if self is TriBool.UNKNOWN or other is TriBool.UNKNOWN:
            return TriBool.UNKNOWN
        return TriBool.FALSE

    def __invert__(self) -> "TriBool":
        if self is TriBool.TRUE:
            return TriBool.FALSE
        if self is TriBool.FALSE:
            return TriBool.TRUE
        return TriBool.UNKNOWN

    def is_true(self) -> bool:
        """True iff the value is definitely TRUE.

        This is the test SQL applies in a WHERE clause: rows whose predicate
        evaluates to FALSE *or* UNKNOWN are filtered out.
        """
        return self is TriBool.TRUE

    @staticmethod
    def from_bool(value: bool) -> "TriBool":
        return TriBool.TRUE if value else TriBool.FALSE


TRUE = TriBool.TRUE
FALSE = TriBool.FALSE
UNKNOWN = TriBool.UNKNOWN


def tri_all(values: Iterable[TriBool]) -> TriBool:
    """3VL conjunction over an iterable; vacuously TRUE.

    This is exactly the semantics of a ``theta ALL`` linking predicate over
    a set of comparison outcomes: FALSE dominates, then UNKNOWN, else TRUE.
    """
    result = TriBool.TRUE
    for v in values:
        if v is TriBool.FALSE:
            return TriBool.FALSE
        if v is TriBool.UNKNOWN:
            result = TriBool.UNKNOWN
    return result


def tri_any(values: Iterable[TriBool]) -> TriBool:
    """3VL disjunction over an iterable; vacuously FALSE.

    This is the semantics of a ``theta SOME/ANY`` linking predicate:
    TRUE dominates, then UNKNOWN, else FALSE.
    """
    result = TriBool.FALSE
    for v in values:
        if v is TriBool.TRUE:
            return TriBool.TRUE
        if v is TriBool.UNKNOWN:
            result = TriBool.UNKNOWN
    return result


_NUMERIC_TYPES = (int, float)


def _comparable(left: Any, right: Any) -> bool:
    """Whether two non-NULL SQL values can be ordered against each other."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return type(left) is type(right)


def compare(left: SqlValue, right: SqlValue) -> TriBool:
    """SQL equality comparison returning a :class:`TriBool`.

    Kept for symmetry; most callers use the operator-specific helpers.
    """
    return sql_compare("=", left, right)


def sql_compare(op: str, left: SqlValue, right: SqlValue) -> TriBool:
    """Evaluate ``left op right`` under SQL 3VL semantics.

    *op* is one of ``= <> < <= > >=`` (``!=`` accepted as alias of ``<>``).
    Any comparison involving NULL is UNKNOWN — unless the session runs in
    Libkin's two-valued mode (:mod:`repro.engine.logic`), where it is
    FALSE.  Comparing incompatible types raises
    :class:`repro.errors.TypeError_` rather than guessing.
    """
    from ..errors import TypeError_

    if left is NULL or right is NULL:
        return TriBool.FALSE if two_valued() else TriBool.UNKNOWN
    if not _comparable(left, right):
        raise TypeError_(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
            f" ({left!r} {op} {right!r})"
        )
    if op == "=":
        return TriBool.from_bool(left == right)
    if op in ("<>", "!="):
        return TriBool.from_bool(left != right)
    if op == "<":
        return TriBool.from_bool(left < right)
    if op == "<=":
        return TriBool.from_bool(left <= right)
    if op == ">":
        return TriBool.from_bool(left > right)
    if op == ">=":
        return TriBool.from_bool(left >= right)
    raise TypeError_(f"unknown comparison operator {op!r}")


def sql_eq(left: SqlValue, right: SqlValue) -> TriBool:
    """Shorthand for :func:`sql_compare` with ``=``."""
    return sql_compare("=", left, right)


NEGATED_OP = {
    "=": "<>",
    "<>": "=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

FLIPPED_OP = {
    "=": "=",
    "<>": "<>",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


def negate_op(op: str) -> str:
    """Return the logical negation of a comparison operator (``<`` -> ``>=``)."""
    return NEGATED_OP[op]


def flip_op(op: str) -> str:
    """Return the operator with operands swapped (``<`` -> ``>``)."""
    return FLIPPED_OP[op]


def group_key(value: SqlValue) -> Any:
    """A hashable grouping key for a single SQL value.

    NULLs group together (as in SQL GROUP BY / our ``nest``), and ints and
    floats that are numerically equal share a key.  Booleans are kept
    distinct from ints.
    """
    if value is NULL:
        return ("\0null",)
    if isinstance(value, bool):
        return ("\0bool", value)
    if isinstance(value, (int, float)):
        return ("\0num", float(value)) if float(value) == value else ("\0num", value)
    return value


def row_group_key(row: Iterable[SqlValue]) -> tuple:
    """Hashable grouping key for a sequence of SQL values."""
    return tuple(group_key(v) for v in row)


def sort_key(value: SqlValue):
    """A total-order sort key placing NULLs first, then by type bucket.

    Used by sort-based ``nest``: the precise order among type buckets is
    irrelevant; what matters is that identical grouping keys are adjacent.
    """
    if value is NULL:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, datetime.date):
        return (4, value.toordinal())
    return (5, repr(value))


def row_sort_key(row: Iterable[SqlValue]) -> tuple:
    """Total-order sort key for a sequence of SQL values."""
    return tuple(sort_key(v) for v in row)
