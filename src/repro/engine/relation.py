"""Materialized flat relations.

A :class:`Relation` couples a :class:`~repro.engine.schema.Schema` with a
list of row tuples.  Rows are plain Python tuples of SQL values (see
:mod:`repro.engine.types`); the engine's physical operators consume and
produce iterators of such tuples, and :meth:`Relation.from_iter`
materializes them.

Relations are *bags* (duplicates allowed), matching SQL semantics before an
explicit DISTINCT.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from .schema import Column, Schema
from .types import NULL, SqlValue, is_null, row_group_key, row_sort_key

Row = Tuple[SqlValue, ...]


class Relation:
    """A schema plus a materialized bag of rows."""

    __slots__ = ("schema", "rows", "__weakref__")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        self.rows: List[Row] = [tuple(r) for r in rows]
        width = len(schema)
        for r in self.rows:
            if len(r) != width:
                raise SchemaError(
                    f"row arity {len(r)} does not match schema width {width}"
                )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_iter(schema: Schema, rows: Iterable[Row]) -> "Relation":
        """Materialize an iterator of rows under *schema*."""
        return Relation(schema, rows)

    @staticmethod
    def from_dicts(schema: Schema, dicts: Iterable[dict]) -> "Relation":
        """Build a relation from dictionaries keyed by (bare) column name.

        Missing keys become NULL, which keeps test fixtures terse.
        """
        rows = []
        for d in dicts:
            rows.append(tuple(d.get(c.name, NULL) for c in schema.columns))
        return Relation(schema, rows)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema names and the same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(self.rows, key=row_sort_key) == sorted(
            other.rows, key=row_sort_key
        )

    def column_values(self, ref: str) -> List[SqlValue]:
        """All values of one column, in row order."""
        i = self.schema.index_of(ref)
        return [r[i] for r in self.rows]

    def fingerprint(self) -> Tuple[int, int, int]:
        """A cheap staleness probe: ``(len, hash(first), hash(last))``.

        Caches keyed on a relation compare this on every hit to catch
        *in-place* row mutation that bypassed the catalog's version
        counter (see :meth:`~repro.engine.catalog.Database.mutate_table`).
        O(1) — it deliberately trades completeness (same-length interior
        edits with untouched endpoints slip through) for zero overhead on
        the hot path; use ``mutate_table`` for guaranteed invalidation.
        """
        if not self.rows:
            return (0, 0, 0)
        try:
            return (len(self.rows), hash(self.rows[0]), hash(self.rows[-1]))
        except TypeError:  # unhashable cell (nested relation value)
            return (len(self.rows), id(self.rows[0]), id(self.rows[-1]))

    def distinct(self) -> "Relation":
        """Set-semantics copy: duplicates removed (NULLs group together)."""
        seen = set()
        out = []
        for r in self.rows:
            k = row_group_key(r)
            if k not in seen:
                seen.add(k)
                out.append(r)
        return Relation(self.schema, out)

    def sorted(self) -> "Relation":
        """A copy with rows in the canonical total order (for display/tests)."""
        return Relation(self.schema, sorted(self.rows, key=row_sort_key))

    def project(self, refs: Sequence[str]) -> "Relation":
        """Projection (without duplicate elimination, as in the paper)."""
        idx = self.schema.indices_of(refs)
        return Relation(
            self.schema.project(refs), [tuple(r[i] for i in idx) for r in self.rows]
        )

    def rename_table(self, table: str) -> "Relation":
        """The same rows under an alias-qualified schema."""
        return Relation(self.schema.rename_table(table), self.rows)

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render as an aligned text table (used by examples and docs)."""
        headers = [c.qualified for c in self.schema.columns]
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if is_null(value):
        return "null"
    return str(value)
