"""Vectorized expression evaluation under SQL three-valued logic.

A predicate over a :class:`~repro.engine.vector.batch.Batch` of *n* rows
evaluates to a pair of boolean masks ``(true, false)``; UNKNOWN is the
complement ``~(true | false)``.  This encodes Kleene logic as plain
boolean algebra:

====  ===========================  ===========================
node  true mask                    false mask
====  ===========================  ===========================
AND   ``t1 & t2``                  ``f1 | f2``
OR    ``t1 | t2``                  ``f1 & f2``
NOT   ``f``                        ``t``
cmp   ``both_valid & result``      ``both_valid & ~result``
====  ===========================  ===========================

Value expressions evaluate to a :class:`~repro.engine.vector.column.Vector`
(NULL as an invalid slot); arithmetic is NULL-propagating with
``x / 0 -> NULL``, exactly as the row engine's
:class:`~repro.engine.expressions.Arith`.

Comparisons between compatible kinds run as single numpy expressions;
incomparable or object-typed pairs fall back to per-row
:func:`~repro.engine.types.sql_compare`, preserving the row engine's
type errors.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...errors import ExpressionError
from ..expressions import (
    And,
    Arith,
    Between,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..logic import two_valued
from ..types import TriBool, sql_compare
from .batch import Batch
from .column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJ,
    KIND_STR,
    NUMERIC_KINDS,
    Vector,
)

MaskPair = Tuple[np.ndarray, np.ndarray]


# --------------------------------------------------------------------- #
# Predicate evaluation -> (true, false) masks
# --------------------------------------------------------------------- #


def eval_truth(expr: Expr, batch: Batch) -> MaskPair:
    """Evaluate *expr* as a predicate over every row of *batch*."""
    n = len(batch)
    if isinstance(expr, Comparison):
        return compare_vectors(
            expr.op, eval_value(expr.left, batch), eval_value(expr.right, batch)
        )
    if isinstance(expr, And):
        t1, f1 = eval_truth(expr.left, batch)
        t2, f2 = eval_truth(expr.right, batch)
        return t1 & t2, f1 | f2
    if isinstance(expr, Or):
        t1, f1 = eval_truth(expr.left, batch)
        t2, f2 = eval_truth(expr.right, batch)
        return t1 | t2, f1 & f2
    if isinstance(expr, Not):
        t, f = eval_truth(expr.operand, batch)
        return f, t
    if isinstance(expr, IsNull):
        v = eval_value(expr.operand, batch)
        null = ~v.valid
        t = null if not expr.negated else ~null
        return t, ~t
    if isinstance(expr, Between):
        v = eval_value(expr.operand, batch)
        lo = eval_value(expr.low, batch)
        hi = eval_value(expr.high, batch)
        t1, f1 = compare_vectors(">=", v, lo)
        t2, f2 = compare_vectors("<=", v, hi)
        return t1 & t2, f1 | f2
    if isinstance(expr, InList):
        v = eval_value(expr.operand, batch)
        t = np.zeros(n, dtype=bool)
        f = np.ones(n, dtype=bool)
        for item in expr.items:
            ti, fi = compare_vectors("=", v, eval_value(item, batch))
            t, f = t | ti, f & fi
        return (f, t) if expr.negated else (t, f)
    # value-typed expression used in predicate position (e.g. the TRUE
    # literal standing in for an empty conjunction)
    return vector_truth(eval_value(expr, batch), expr)


def vector_truth(vec: Vector, expr: Expr) -> MaskPair:
    """SQL truth of a value vector (bools; NULL -> UNKNOWN, or FALSE
    under the two-valued mode)."""
    if vec.kind == KIND_BOOL:
        t = vec.valid & vec.data
        if two_valued():
            return t, ~t
        return t, vec.valid & ~vec.data
    if not vec.valid.any():
        zeros = np.zeros(len(vec), dtype=bool)
        if two_valued():
            return zeros, np.ones(len(vec), dtype=bool)
        return zeros, zeros.copy()
    raise ExpressionError(f"expression {expr!r} is not a predicate")


# --------------------------------------------------------------------- #
# Value evaluation -> Vector
# --------------------------------------------------------------------- #


def eval_value(expr: Expr, batch: Batch) -> Vector:
    n = len(batch)
    if isinstance(expr, Col):
        return batch.column(expr.ref)
    if isinstance(expr, Literal):
        return Vector.from_scalar(expr.value, n)
    if isinstance(expr, Arith):
        return _arith_vectors(
            expr.op,
            eval_value(expr.left, batch),
            eval_value(expr.right, batch),
            expr,
        )
    # predicate-typed expression used as a value: TRUE/FALSE/NULL
    t, f = eval_truth(expr, batch)
    return Vector(KIND_BOOL, t, t | f)


# --------------------------------------------------------------------- #
# Comparison kernel
# --------------------------------------------------------------------- #

_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _fast_comparable(a: Vector, b: Vector) -> bool:
    if a.kind in NUMERIC_KINDS and b.kind in NUMERIC_KINDS:
        return True
    return a.kind == b.kind and a.kind in (KIND_BOOL, KIND_STR)


def compare_vectors(op: str, a: Vector, b: Vector) -> MaskPair:
    """``a op b`` element-wise, as (true, false) masks.

    Under the two-valued mode every comparison touching a NULL slot is
    FALSE, so the false mask collapses to ``~true``.
    """
    both = a.valid & b.valid
    n = len(a)
    if not both.any():
        zeros = np.zeros(n, dtype=bool)
        if two_valued():
            return zeros, np.ones(n, dtype=bool)
        return zeros, zeros.copy()
    if _fast_comparable(a, b):
        result = _CMP[op](a.data, b.data)
        t = both & result
        if two_valued():
            return t, ~t
        return t, both & ~result
    # mixed / object kinds: defer to the row engine's semantics per pair
    # (this also raises TypeError_ on incomparable values, as rows do)
    t = np.zeros(n, dtype=bool)
    f = np.zeros(n, dtype=bool)
    av = a.data.tolist()
    bv = b.data.tolist()
    for i in np.flatnonzero(both).tolist():
        r = sql_compare(op, av[i], bv[i])
        if r is TriBool.TRUE:
            t[i] = True
        elif r is TriBool.FALSE:
            f[i] = True
    if two_valued():
        return t, ~t
    return t, f


# --------------------------------------------------------------------- #
# Arithmetic kernel
# --------------------------------------------------------------------- #


def _arith_vectors(op: str, a: Vector, b: Vector, expr: Arith) -> Vector:
    both = a.valid & b.valid
    n = len(a)
    if a.kind in NUMERIC_KINDS and b.kind in NUMERIC_KINDS:
        if op == "/":
            zero = b.data == 0
            valid = both & ~zero
            denom = np.where(zero, 1, b.data)
            with np.errstate(divide="ignore", invalid="ignore"):
                out = a.data.astype(np.float64) / denom
            return Vector(KIND_FLOAT, out, valid)
        if op in ("+", "-", "*"):
            fn = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
            out = fn(a.data, b.data)
            kind = (
                KIND_FLOAT
                if KIND_FLOAT in (a.kind, b.kind)
                else KIND_INT
            )
            return Vector(kind, out, both)
        raise ExpressionError(f"unknown arithmetic operator {op!r}")
    # non-numeric (or object) operands: per-row Python semantics
    from ..expressions import _ARITH

    values = []
    av = a.tolist_sql()
    bv = b.tolist_sql()
    from ..types import NULL, is_null

    for x, y in zip(av, bv):
        if is_null(x) or is_null(y):
            values.append(NULL)
            continue
        try:
            values.append(_ARITH[op](x, y))
        except KeyError:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        except ZeroDivisionError:
            values.append(NULL)
    return Vector.from_values(values)
