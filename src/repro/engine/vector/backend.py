"""The columnar operator factory plugged into Algorithm 1.

:class:`VectorBackend` implements the same protocol as
:class:`repro.core.backend.RowBackend` but every intermediate result is
a :class:`~repro.engine.vector.batch.Batch`.  Block reduction executes
the *shared* :class:`~repro.core.reduce.BlockJoinPlan` — the join order
and predicate placement are decided once, syntactically, so the two
backends cannot diverge semantically; only the physical kernels differ.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ...core.blocks import NestedQuery, QueryBlock
from ...core.reduce import (
    ReducedBlock,
    _is_grouped_subquery,
    grouped_subquery_relation,
    plan_block_join,
    rid_name,
)
from ..catalog import Database
from ..governor import charge_batch, checkpoint
from ..logic import current_logic
from ..metrics import current_metrics
from ..schema import Column, Schema
from ..trace import CONTRACT_FILTERING, CONTRACT_PRESERVING, op_span
from .batch import Batch, relation_batch, table_batch
from .column import KIND_INT, Vector
from . import kernels, nestlink


class VectorBackend:
    """Columnar batch execution substrate for the nested strategies."""

    kind = "vector"

    # -- step one ------------------------------------------------------- #

    def reduce_all(
        self, query: NestedQuery, db: Database
    ) -> Dict[int, ReducedBlock]:
        return {
            b.index: self._reduce_block(b, db) for b in query.root.walk()
        }

    def _reduce_block(self, block: QueryBlock, db: Database) -> ReducedBlock:
        from ...core.plancache import current_reduce_cache

        checkpoint("reduce-block")
        plan = plan_block_join(block)
        cache = current_reduce_cache()
        # the build depends only on the syntactic join plan and the base
        # tables, never on the block index (the _rid column is attached
        # below, outside the cached image).  The base tables' fingerprints
        # are part of the key: a cached build over rows that were since
        # mutated in place (bypassing Database.version) misses instead of
        # serving stale data.  The logic mode participates too: a NOT
        # over a NULL comparison filters differently under 2VL.
        key = (
            (
                repr(plan),
                self.kind,
                current_logic(),
                self._tables_fingerprint(plan, db),
            )
            if cache is not None
            else None
        )
        cached = cache.reduced(key) if cache is not None else None
        with op_span(
            f"reduce[T{block.index}]",
            kind="phase",
            tables=",".join(block.alias_list),
            cache=("hit" if cached is not None else
                   "miss" if cache is not None else "off"),
        ) as span:
            if cached is not None:
                current = cached
            else:
                current = self._execute_join_plan(plan, db)
                if cache is not None:
                    cache.store_reduced(key, current)
            if _is_grouped_subquery(block):
                # GROUP BY / HAVING subquery blocks reuse the row-side
                # aggregation (outside the cached image, which stays the
                # plain join result shared with ungrouped lookups)
                current = relation_batch(
                    grouped_subquery_relation(block, current.to_relation())
                )
            if span is not None:
                span.add("rows_out", len(current))
        rid = rid_name(block)
        n = len(current)
        current = current.with_column(
            Column(rid, not_null=True),
            Vector(KIND_INT, np.arange(n, dtype=np.int64), np.ones(n, bool)),
        )
        return ReducedBlock(
            block=block,
            relation=current,
            rid_ref=rid,
            attr_refs=current.schema.names,
        )

    @staticmethod
    def _tables_fingerprint(plan, db: Database):
        """The fingerprints of every base table a join plan reads."""
        return tuple(
            db.table(table_name).relation.fingerprint()
            for _alias, table_name in plan.table_names
        )

    def _execute_join_plan(self, plan, db: Database) -> Batch:
        """Run one block's scan/filter/join pipeline (cache-oblivious)."""
        parts: Dict[str, Batch] = {}
        for alias, table_name in plan.table_names:
            checkpoint("scan")
            batch = table_batch(db.table(table_name))
            charge_batch(batch, f"table materialization ({table_name})")
            if alias != table_name:
                batch = batch.rename_table(alias)
            batch = kernels.scan(batch, alias)
            pred = plan.scan_filter(alias)
            if pred is not None:
                batch = self._kernel_filter(batch, pred)
            parts[alias] = batch
        current = parts[plan.aliases[0]]
        for step in plan.steps:
            checkpoint("join-step")
            if step.left_keys:
                current = self._kernel_hash_join(
                    current,
                    parts[step.alias],
                    step.left_keys,
                    step.right_keys,
                    step.residual,
                )
            else:
                current = self._kernel_cross_join(
                    current, parts[step.alias], step.residual
                )
        if plan.final_residual is not None:
            current = self._kernel_filter(current, plan.final_residual)
        return current

    # the physical kernels of the reduce pipeline, overridable by the
    # parallel subclass without re-stating the plan walk above
    def _kernel_hash_join(self, left, right, left_keys, right_keys, residual):
        return kernels.hash_join(left, right, left_keys, right_keys, residual)

    def _kernel_cross_join(self, left, right, residual):
        return kernels.cross_join(left, right, residual)

    def _kernel_filter(self, batch, predicate):
        return kernels.filter_batch(batch, predicate)

    # -- introspection -------------------------------------------------- #

    def names(self, rel: Batch) -> Sequence[str]:
        return rel.schema.names

    # -- way down ------------------------------------------------------- #

    def left_outer_join(
        self,
        rel: Batch,
        child: Batch,
        outer_keys: Sequence[str],
        inner_keys: Sequence[str],
        residual,
    ) -> Batch:
        return kernels.left_outer_hash_join(
            rel, child, outer_keys, inner_keys, residual
        )

    def outer_cross_join(self, rel: Batch, child: Batch) -> Batch:
        return kernels.outer_cross_join(rel, child)

    # -- way up --------------------------------------------------------- #

    def nest_link(
        self,
        rel: Batch,
        by: Sequence[str],
        keep: Sequence[str],
        predicate,
        link,
        rid_ref: str,
        strict: bool,
        pad_refs: Sequence[str],
        nest_impl: str,
    ) -> Batch:
        # the fused kernel reads members straight off the flat batch, so
        # the row backend's explicit ``keep`` projection is unnecessary
        return nestlink.nest_link(
            rel, by, predicate, link, rid_ref, strict, pad_refs, nest_impl
        )

    # -- virtual Cartesian product -------------------------------------- #

    def uncorrelated_link(
        self,
        rel: Batch,
        sub: Batch,
        predicate,
        link,
        rid_ref: str,
        strict: bool,
        pad_refs: Sequence[str],
    ) -> Batch:
        return nestlink.uncorrelated_link(
            rel, sub, predicate, link, rid_ref, strict, pad_refs
        )

    # -- disjunctive residual ------------------------------------------- #

    def apply_residual(
        self,
        rel: Batch,
        residual,
        strict: bool,
        pad_refs: Sequence[str],
        mark_refs: Sequence[str],
    ) -> Batch:
        """Apply a block's disjunctive linking residual over its marks.

        Evaluates *residual* over the batch (mark columns are ordinary
        boolean vectors), deletes failing rows (strict σ) or NULL-pads
        *pad_refs* (pseudo σ*), then projects the marks away.
        """
        from .exprs import eval_truth

        metrics = current_metrics()
        n = len(rel)
        with op_span(
            "vec-linking-residual",
            contract=CONTRACT_FILTERING if strict else CONTRACT_PRESERVING,
            pred=repr(residual),
        ) as span:
            metrics.add("linking_evals", n)
            t, _f = eval_truth(residual, rel)
            if strict:
                out = rel.take(np.flatnonzero(t))
            else:
                fail = ~t
                out = (
                    nestlink._pad_columns(rel, pad_refs, fail)
                    if fail.any()
                    else rel
                )
                metrics.add("null_padded_rows", int(fail.sum()))
            keep = [c for c in out.schema.names if c not in set(mark_refs)]
            out = out.project(keep)
            if span is not None:
                span.add("rows_in", n)
                span.add("rows_out", len(out))
        return out

    # -- output --------------------------------------------------------- #

    def finalize(
        self, rel: Batch, select_refs: Sequence[str], distinct: bool
    ):
        out = rel.project(list(select_refs)).to_relation()
        if distinct:
            out = out.distinct()
        return out
