"""Columnar values: a typed numpy array plus a validity bitmap.

A :class:`Vector` stores one column of SQL values as

* ``data`` — a numpy array whose dtype is picked by the column's
  *kind* (``i8``/``f8``/``bool``/``str``/``obj``), and
* ``valid`` — a boolean mask, ``True`` where the value is present.

SQL NULL is *not* a value in ``data``; it is ``valid[i] == False`` (the
slot in ``data`` holds an arbitrary fill and must never be interpreted).
Keeping NULLs out of band is what lets the kernels evaluate three-valued
logic with plain boolean algebra: a comparison returns a pair of masks
``(true, false)`` and UNKNOWN is simply ``~(true | false)``.

Kind selection mirrors the row engine's dynamic typing: Python bools map
to ``bool`` (kept distinct from ints, as in
:func:`repro.engine.types.group_key`), ints to ``i8``, floats — or an
int/float mix — to ``f8``, strings to a fixed-width ``str`` array, and
anything else (dates, oversized ints, genuinely mixed columns) to an
``obj`` array that falls back to per-value Python semantics.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from ..types import NULL, group_key, is_null

KIND_INT = "i8"
KIND_FLOAT = "f8"
KIND_BOOL = "bool"
KIND_STR = "str"
KIND_OBJ = "obj"

NUMERIC_KINDS = (KIND_INT, KIND_FLOAT)

_FILL = {
    KIND_INT: 0,
    KIND_FLOAT: 0.0,
    KIND_BOOL: False,
    KIND_STR: "",
    KIND_OBJ: None,
}


class Vector:
    """One column: ``data`` (numpy) + ``valid`` (bool mask, True=present)."""

    __slots__ = ("kind", "data", "valid")

    def __init__(self, kind: str, data: np.ndarray, valid: np.ndarray):
        self.kind = kind
        self.data = data
        self.valid = valid

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vector({self.kind}, n={len(self.data)}, nulls={int((~self.valid).sum())})"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_values(values: Sequence[Any]) -> "Vector":
        """Build a vector from Python SQL values (NULL marker allowed)."""
        n = len(values)
        valid = np.ones(n, dtype=bool)
        kinds = set()
        for i, v in enumerate(values):
            if v is NULL:
                valid[i] = False
            elif isinstance(v, bool):
                kinds.add(KIND_BOOL)
            elif isinstance(v, int):
                kinds.add(KIND_INT)
            elif isinstance(v, float):
                kinds.add(KIND_FLOAT)
            elif isinstance(v, str):
                kinds.add(KIND_STR)
            else:
                kinds.add(KIND_OBJ)
        kind = _choose_kind(kinds)
        fill = _FILL[kind]
        dense = [fill if v is NULL else v for v in values]
        try:
            if kind == KIND_INT:
                data = np.array(dense, dtype=np.int64)
            elif kind == KIND_FLOAT:
                data = np.array(dense, dtype=np.float64)
            elif kind == KIND_BOOL:
                data = np.array(dense, dtype=bool)
            elif kind == KIND_STR:
                data = np.array(dense, dtype=str) if dense else np.array([], dtype="U1")
            else:
                data = np.empty(n, dtype=object)
                for i, v in enumerate(dense):
                    data[i] = v
        except OverflowError:
            # ints beyond int64: keep exact Python objects
            kind = KIND_OBJ
            data = np.empty(n, dtype=object)
            for i, v in enumerate(values):
                data[i] = None if v is NULL else v
        return Vector(kind, data, valid)

    @staticmethod
    def nulls(kind: str, n: int) -> "Vector":
        """A vector of *n* NULLs carried on the given kind's layout."""
        if kind == KIND_STR:
            data = np.zeros(n, dtype="U1")
        elif kind == KIND_OBJ:
            data = np.empty(n, dtype=object)
        else:
            dtype = {KIND_INT: np.int64, KIND_FLOAT: np.float64, KIND_BOOL: bool}[kind]
            data = np.zeros(n, dtype=dtype)
        return Vector(kind, data, np.zeros(n, dtype=bool))

    @staticmethod
    def from_scalar(value: Any, n: int) -> "Vector":
        """Broadcast one SQL value (or NULL) to length *n*."""
        if is_null(value):
            return Vector.nulls(KIND_INT, n)
        if isinstance(value, bool):
            return Vector(KIND_BOOL, np.full(n, value, dtype=bool), np.ones(n, bool))
        if isinstance(value, int):
            try:
                return Vector(
                    KIND_INT, np.full(n, value, dtype=np.int64), np.ones(n, bool)
                )
            except OverflowError:
                pass
        elif isinstance(value, float):
            return Vector(
                KIND_FLOAT, np.full(n, value, dtype=np.float64), np.ones(n, bool)
            )
        elif isinstance(value, str):
            # np.full(..., dtype=str) truncates to U1; let it infer width
            return Vector(KIND_STR, np.full(n, value), np.ones(n, bool))
        data = np.empty(n, dtype=object)
        data[:] = value
        return Vector(KIND_OBJ, data, np.ones(n, bool))

    # ------------------------------------------------------------------ #
    # Row movement
    # ------------------------------------------------------------------ #

    def take(self, idx: np.ndarray) -> "Vector":
        """Gather rows by position (standard fancy indexing)."""
        return Vector(self.kind, self.data[idx], self.valid[idx])

    def take_padded(self, idx: np.ndarray) -> "Vector":
        """Gather rows; positions equal to ``-1`` come out as NULL.

        This is how outer joins pad their null-extended side without a
        separate concatenation step.
        """
        clipped = np.where(idx < 0, 0, idx)
        if len(self.data) == 0:
            # nothing to gather from: everything must be padding
            return Vector.nulls(self.kind, len(idx))
        data = self.data[clipped]
        valid = self.valid[clipped] & (idx >= 0)
        return Vector(self.kind, data, valid)

    @staticmethod
    def vstack(a: "Vector", b: "Vector") -> "Vector":
        """Row-wise concatenation; kinds are promoted when they differ."""
        if a.kind == b.kind:
            return Vector(
                a.kind,
                np.concatenate([a.data, b.data]),
                np.concatenate([a.valid, b.valid]),
            )
        if a.kind in NUMERIC_KINDS and b.kind in NUMERIC_KINDS:
            return Vector(
                KIND_FLOAT,
                np.concatenate(
                    [a.data.astype(np.float64), b.data.astype(np.float64)]
                ),
                np.concatenate([a.valid, b.valid]),
            )
        # an all-NULL side adopts the other side's layout
        if not a.valid.any():
            return Vector.vstack(Vector.nulls(b.kind, len(a)), b)
        if not b.valid.any():
            return Vector.vstack(a, Vector.nulls(a.kind, len(b)))
        return Vector.from_values(a.tolist_sql() + b.tolist_sql())

    # ------------------------------------------------------------------ #
    # Export / keys
    # ------------------------------------------------------------------ #

    def tolist_sql(self) -> List[Any]:
        """Python SQL values (native scalars, NULL where invalid)."""
        out = self.data.tolist()
        if self.valid.all():
            return out
        invalid = np.flatnonzero(~self.valid)
        for i in invalid.tolist():
            out[i] = NULL
        return out

    def join_keys(self) -> List[Any]:
        """Per-row hashable keys; ``None`` where the value is NULL.

        Keys use the row engine's :func:`~repro.engine.types.group_key`
        normalization, so ``2`` and ``2.0`` collide and booleans stay
        distinct from ints — exactly the hash-join/nest key semantics of
        the row backend.
        """
        vals = self.data.tolist()
        valid = self.valid
        return [
            group_key(v) if valid[i] else None for i, v in enumerate(vals)
        ]

    def codes(self) -> np.ndarray:
        """Dense int64 grouping codes; every NULL shares code 0.

        Values that are equal under SQL grouping share a code.  For the
        numeric / string / bool kinds this is fully vectorized via
        ``np.unique``; the ``obj`` kind falls back to a Python dict over
        :func:`~repro.engine.types.group_key`.
        """
        n = len(self.data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.kind == KIND_OBJ:
            mapping: dict = {}
            out = np.empty(n, dtype=np.int64)
            valid = self.valid
            for i, v in enumerate(self.data.tolist()):
                if not valid[i]:
                    out[i] = 0
                    continue
                k = group_key(v)
                code = mapping.get(k)
                if code is None:
                    code = len(mapping) + 1
                    mapping[k] = code
                out[i] = code
            return out
        _, inv = np.unique(self.data, return_inverse=True)
        out = inv.astype(np.int64) + 1
        out[~self.valid] = 0
        return out


def _choose_kind(kinds: set) -> str:
    if not kinds:
        return KIND_INT
    if len(kinds) == 1:
        return next(iter(kinds))
    if kinds <= {KIND_INT, KIND_FLOAT}:
        return KIND_FLOAT
    return KIND_OBJ
