"""Batches: a schema plus one :class:`Vector` per column.

A :class:`Batch` is the columnar counterpart of
:class:`~repro.engine.relation.Relation` — same
:class:`~repro.engine.schema.Schema`, same bag semantics, but values
live in column arrays instead of row tuples.  All batch kernels
(:mod:`repro.engine.vector.kernels`) consume and produce batches; the
boundary back to rows is crossed exactly once, in
``VectorBackend.finalize``.

Base tables are converted lazily and the conversion is cached on the
:class:`~repro.engine.catalog.Table` object, revalidated against the
relation's fingerprint on every hit, so repeated queries over one
database pay the row→column cost once while catalog mutations (and even
direct row edits) take effect.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..catalog import Table
from ..relation import Relation
from ..schema import Schema
from .column import Vector

_TABLE_CACHE_ATTR = "_vector_batch_cache"


class Batch:
    """A schema plus parallel column vectors of equal length."""

    __slots__ = ("schema", "columns", "length")

    def __init__(self, schema: Schema, columns: Sequence[Vector], length: int):
        self.schema = schema
        self.columns: List[Vector] = list(columns)
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self.schema!r}, {self.length} rows)"

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_relation(rel: Relation) -> "Batch":
        cols = list(zip(*rel.rows)) if rel.rows else [()] * len(rel.schema)
        return Batch(
            rel.schema,
            [Vector.from_values(list(c)) for c in cols],
            len(rel.rows),
        )

    def to_relation(self) -> Relation:
        if not self.columns:
            return Relation(self.schema, [() for _ in range(self.length)])
        cols = [v.tolist_sql() for v in self.columns]
        return Relation(self.schema, list(zip(*cols)))

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #

    def column(self, ref: str) -> Vector:
        return self.columns[self.schema.index_of(ref)]

    # ------------------------------------------------------------------ #
    # Structural ops (all zero-copy on the vectors where possible)
    # ------------------------------------------------------------------ #

    def rename_table(self, table: str) -> "Batch":
        return Batch(self.schema.rename_table(table), self.columns, self.length)

    def project(self, refs: Sequence[str]) -> "Batch":
        idx = self.schema.indices_of(refs)
        return Batch(
            self.schema.project(refs), [self.columns[i] for i in idx], self.length
        )

    def take(self, idx: np.ndarray) -> "Batch":
        return Batch(self.schema, [c.take(idx) for c in self.columns], len(idx))

    def take_padded(self, idx: np.ndarray) -> "Batch":
        """Gather rows; ``-1`` positions become all-NULL rows."""
        return Batch(
            self.schema, [c.take_padded(idx) for c in self.columns], len(idx)
        )

    def with_column(self, column, vector: Vector) -> "Batch":
        """This batch extended by one more column on the right."""
        return Batch(
            Schema(tuple(self.schema.columns) + (column,)),
            self.columns + [vector],
            self.length,
        )

    @staticmethod
    def concat_columns(left: "Batch", right: "Batch") -> "Batch":
        """Side-by-side concatenation (the join output layout)."""
        assert left.length == right.length
        return Batch(
            left.schema.concat(right.schema),
            left.columns + right.columns,
            left.length,
        )

    @staticmethod
    def vstack(a: "Batch", b: "Batch") -> "Batch":
        """Row-wise concatenation of two batches with equal schemas."""
        return Batch(
            a.schema,
            [Vector.vstack(x, y) for x, y in zip(a.columns, b.columns)],
            a.length + b.length,
        )


def table_batch(table: Table) -> Batch:
    """The columnar image of a base table, cached on the table object.

    The cache entry stores the source relation's
    :meth:`~repro.engine.relation.Relation.fingerprint` and is rebuilt
    whenever it no longer matches — so direct in-place row mutation that
    bypassed :meth:`~repro.engine.catalog.Database.mutate_table` is
    still *detected* (cheaply, not exhaustively: the probe is
    length + endpoint hashes, see ``fingerprint``).
    """
    stored = getattr(table.relation, "stored_batch", None)
    if stored is not None:
        # a StoredRelation's columns are already memory-mapped vectors;
        # the batch is the table — no conversion, no copy.
        return stored()
    fp = table.relation.fingerprint()
    cached = getattr(table, _TABLE_CACHE_ATTR, None)
    if cached is not None:
        batch, cached_fp = cached
        if cached_fp == fp:
            return batch
    batch = Batch.from_relation(table.relation)
    setattr(table, _TABLE_CACHE_ATTR, (batch, fp))
    return batch


def invalidate_table_batch(table: Table) -> None:
    """Drop a table's cached columnar image (catalog mutation hook)."""
    if getattr(table, _TABLE_CACHE_ATTR, None) is not None:
        setattr(table, _TABLE_CACHE_ATTR, None)


# --------------------------------------------------------------------- #
# Relation-level conversion cache
# --------------------------------------------------------------------- #

#: id(relation) -> (weakref, Batch, fingerprint).  Entries evict
#: themselves when the relation is collected; a fingerprint mismatch on
#: hit (in-place row mutation) rebuilds the batch in place.
_RELATION_CACHE: "Dict[int, Tuple[weakref.ref, Batch, tuple]]" = {}


def relation_batch(rel: Relation) -> Batch:
    """The columnar image of *rel*, cached per relation object.

    The table-level cache above only covers catalog base tables;
    intermediate relations (reduced subquery results, attached
    relations) were re-encoded from Python rows on every execution.
    This cache keys on object identity, revalidates against
    :meth:`~repro.engine.relation.Relation.fingerprint`, and drops the
    entry via weakref callback once the relation dies.
    """
    stored = getattr(rel, "stored_batch", None)
    if stored is not None:
        return stored()
    key = id(rel)
    fp = rel.fingerprint()
    cached = _RELATION_CACHE.get(key)
    if cached is not None:
        ref, batch, cached_fp = cached
        if ref() is rel and cached_fp == fp:
            return batch
    batch = Batch.from_relation(rel)

    def _evict(_ref, _key=key):
        _RELATION_CACHE.pop(_key, None)

    _RELATION_CACHE[key] = (weakref.ref(rel, _evict), batch, fp)
    return batch
