"""Fused batch nest + linking selection, and the vectorized
virtual-Cartesian-product link.

The row backend materializes nested relations: ``nest`` builds one row
per group holding a set of members, then the linking (σ) or pseudo (σ*)
selection walks the groups.  The batch backend fuses the two: groups are
a factorization (``ids``) of the flat batch over the nesting attributes,
and each linking predicate becomes a per-group boolean aggregate:

* ``EXISTS`` / ``NOT EXISTS`` — count of *live* members (rows whose
  synthetic ``_rid`` is non-NULL: the pk-is-NULL convention marks
  padded rows as "not really a member");
* ``θ SOME`` — TRUE iff some live member's comparison is TRUE
  (``bincount`` over the comparison's true-mask);
* ``θ ALL`` — by De Morgan in Kleene logic, ``¬(¬θ SOME)``: TRUE iff no
  live member makes ``¬θ`` TRUE and none makes it UNKNOWN.  This is
  exact: SQL's UNKNOWN propagates identically on both sides.

Strict selection keeps the passing groups (one output row per group,
projected to the nesting attributes); pseudo selection keeps every group
but NULLs out the current block's attributes of failing groups.

The uncorrelated link shares the member set across all outer rows, so
``θ SOME`` collapses to a single existence test against the member
multiset: ``isin`` for ``=``, a distinct-count argument for ``<>``,
min/max bounds for the orderings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..metrics import current_metrics
from ..trace import CONTRACT_FILTERING, CONTRACT_PRESERVING, op_span
from ..types import negate_op
from .batch import Batch
from .column import KIND_INT, Vector
from .exprs import _fast_comparable, compare_vectors
from .kernels import first_occurrences, group_ids


def nest_link(
    batch: Batch,
    by: Sequence[str],
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
    nest_impl: str,
) -> Batch:
    """Nest *batch* by *by* and apply the linking predicate in one pass."""
    metrics = current_metrics()
    n = len(batch)
    with op_span(
        "vec-nest-link",
        contract=CONTRACT_FILTERING,
        impl=nest_impl,
        pred=predicate.describe(),
        by=",".join(by),
    ) as span:
        metrics.add("rows_nested", n)
        if nest_impl == "sorted":
            metrics.add("rows_sorted", n)
        ids, n_groups = group_ids(batch, by, nest_impl)
        rep = first_occurrences(ids, n_groups)
        metrics.add("linking_evals", n_groups)
        passed = _group_pass(batch, ids, n_groups, predicate, link, rid_ref)
        order = np.argsort(rep, kind="stable")  # groups in appearance order
        if strict:
            keep = order[passed[order]]
            out = batch.take(rep[keep]).project(by)
        else:
            out = batch.take(rep[order]).project(by)
            fail = ~passed[order]
            if fail.any():
                out = _pad_columns(out, pad_refs, fail)
            metrics.add("null_padded_rows", int(fail.sum()))
        if span is not None:
            span.add("rows_in", n)
            span.add("rows_out", len(out))
            if n:
                span.set_max("peak_group", int(np.bincount(ids).max()))
        metrics.add("rows_out", len(out))
    return out


def _group_pass(
    batch: Batch,
    ids: np.ndarray,
    n_groups: int,
    predicate,
    link,
    rid_ref: str,
) -> np.ndarray:
    """Per-group verdict (is the linking predicate definitely TRUE?)."""
    if n_groups == 0:
        return np.zeros(0, dtype=bool)
    live = batch.column(rid_ref).valid
    q = predicate.quantifier
    if q in ("exists", "not_exists"):
        live_counts = np.bincount(ids[live], minlength=n_groups)
        return live_counts > 0 if q == "exists" else live_counts == 0
    n = len(batch)
    lhs = (
        batch.column(link.outer_ref)
        if link.outer_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    rhs = (
        batch.column(link.inner_ref)
        if link.inner_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    # ALL θ ≡ ¬(SOME ¬θ) — exact under Kleene logic, since a comparison
    # is UNKNOWN iff its negation is (both are NULL-driven).
    theta = predicate.theta if q == "some" else negate_op(predicate.theta)
    t, f = compare_vectors(theta, lhs, rhs)
    some_true = np.bincount(ids[live & t], minlength=n_groups) > 0
    some_unknown = (
        np.bincount(ids[live & ~t & ~f], minlength=n_groups) > 0
    )
    if q == "some":
        return some_true
    return ~some_true & ~some_unknown


def _pad_columns(
    batch: Batch, pad_refs: Sequence[str], fail: np.ndarray
) -> Batch:
    """NULL out the *pad_refs* columns of rows where *fail* is set."""
    positions = set(batch.schema.indices_of(pad_refs))
    cols = [
        Vector(c.kind, c.data, c.valid & ~fail) if i in positions else c
        for i, c in enumerate(batch.columns)
    ]
    return Batch(batch.schema, cols, len(batch))


# --------------------------------------------------------------------- #
# Uncorrelated (virtual Cartesian product) link
# --------------------------------------------------------------------- #


def uncorrelated_link(
    batch: Batch,
    sub: Batch,
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
) -> Batch:
    """Apply a shared-member-set linking predicate to every outer row."""
    metrics = current_metrics()
    n = len(batch)
    with op_span(
        "vec-uncorrelated-link",
        contract=CONTRACT_FILTERING if strict else CONTRACT_PRESERVING,
        pred=predicate.describe(),
    ) as span:
        metrics.add("linking_evals", n)
        passed = _uncorrelated_pass(batch, sub, predicate, link, rid_ref)
        if strict:
            out = batch.take(np.flatnonzero(passed))
        else:
            fail = ~passed
            out = _pad_columns(batch, pad_refs, fail) if fail.any() else batch
            metrics.add("null_padded_rows", int(fail.sum()))
        if span is not None:
            span.add("rows_in", n)
            span.add("rows_out", len(out))
        metrics.add("rows_out", len(out))
    return out


def _uncorrelated_pass(
    batch: Batch, sub: Batch, predicate, link, rid_ref: str
) -> np.ndarray:
    n = len(batch)
    pk = sub.column(rid_ref)
    live_idx = np.flatnonzero(pk.valid)
    m = len(live_idx)
    q = predicate.quantifier
    if q == "exists":
        return np.full(n, m > 0, dtype=bool)
    if q == "not_exists":
        return np.full(n, m == 0, dtype=bool)
    if m == 0:
        # SOME over ∅ is FALSE, ALL over ∅ vacuously TRUE
        return np.full(n, q == "all", dtype=bool)
    lhs = (
        batch.column(link.outer_ref)
        if link.outer_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    values = (
        sub.column(link.inner_ref).take(live_idx)
        if link.inner_ref is not None
        else Vector.nulls(KIND_INT, m)
    )
    nn_idx = np.flatnonzero(values.valid)
    vals = values.take(nn_idx)
    has_null_member = len(nn_idx) < m
    if len(vals) and not _fast_comparable(lhs, vals):
        # mixed kinds: per-row set-predicate evaluation (row semantics,
        # including TypeError_ on incomparable values)
        members = [(v, 0) for v in values.tolist_sql()]
        return np.array(
            [
                predicate.evaluate(v, members).is_true()
                for v in lhs.tolist_sql()
            ],
            dtype=bool,
        )
    theta = predicate.theta if q == "some" else negate_op(predicate.theta)
    if len(vals) == 0:
        some_true = np.zeros(n, dtype=bool)
    else:
        some_true = _exists_test(theta, lhs.data, vals.data) & lhs.valid
    # an UNKNOWN comparison exists when the lhs is NULL or any member is
    some_unknown = ~lhs.valid | (
        np.full(n, has_null_member, dtype=bool) & lhs.valid
    )
    if q == "some":
        return some_true
    return ~some_true & ~some_unknown


def _exists_test(theta: str, lhs: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """``∃ v ∈ vals: lhs θ v`` for every lhs element (all values non-NULL)."""
    if theta == "=":
        return np.isin(lhs, vals)
    if theta in ("<>", "!="):
        distinct = np.unique(vals)
        if len(distinct) >= 2:
            return np.ones(len(lhs), dtype=bool)
        return lhs != distinct[0]
    if theta == "<":
        return lhs < vals.max()
    if theta == "<=":
        return lhs <= vals.max()
    if theta == ">":
        return lhs > vals.min()
    if theta == ">=":
        return lhs >= vals.min()
    raise AssertionError(f"unexpected linking theta {theta!r}")
