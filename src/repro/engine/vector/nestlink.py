"""Fused batch nest + linking selection, and the vectorized
virtual-Cartesian-product link.

The row backend materializes nested relations: ``nest`` builds one row
per group holding a set of members, then the linking (σ) or pseudo (σ*)
selection walks the groups.  The batch backend fuses the two: groups are
a factorization (``ids``) of the flat batch over the nesting attributes,
and each linking predicate becomes a per-group boolean aggregate:

* ``EXISTS`` / ``NOT EXISTS`` — count of *live* members (rows whose
  synthetic ``_rid`` is non-NULL: the pk-is-NULL convention marks
  padded rows as "not really a member");
* ``θ SOME`` — TRUE iff some live member's comparison is TRUE
  (``bincount`` over the comparison's true-mask), FALSE iff every live
  member's comparison is FALSE (vacuously FALSE on the empty group);
* ``θ ALL`` — TRUE iff no live member's comparison is FALSE or UNKNOWN
  (vacuously TRUE on the empty group), FALSE iff some member's
  comparison is FALSE;
* aggregate links (``lhs θ agg({B})``) — a validity-bitmap group
  aggregation (``bincount`` counts and sums, ``ufunc.at`` min/max)
  followed by one vectorized comparison per group.

Quantifier verdicts are computed from the comparison's own
``(true, false)`` masks on the *original* θ — never by the De Morgan
``ALL θ ≡ ¬(SOME ¬θ)`` trick, which is only sound when UNKNOWN
propagates symmetrically.  Under the two-valued mode a NULL-touching
comparison is simply FALSE (no UNKNOWN mask), and the direct formulation
stays exact while De Morgan would not (``5 > ALL {2, NULL}`` must be
FALSE, not TRUE).

Strict selection keeps the passing groups (one output row per group,
projected to the nesting attributes); pseudo selection keeps every group
but NULLs out the current block's attributes of failing groups; mark
evaluation keeps every group and appends the three-valued verdict as a
boolean column for the parent block's disjunctive residual.

The uncorrelated link shares the member set across all outer rows, so
``θ SOME`` collapses to a single existence test against the member
multiset: ``isin`` for ``=``, a distinct-count argument for ``<>``,
min/max bounds for the orderings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..logic import two_valued
from ..metrics import current_metrics
from ..operators.aggregate import _finish
from ..schema import Column
from ..trace import CONTRACT_FILTERING, CONTRACT_PRESERVING, op_span
from ..types import NULL, is_null, negate_op
from .batch import Batch
from .column import KIND_BOOL, KIND_FLOAT, KIND_INT, NUMERIC_KINDS, Vector
from .exprs import _fast_comparable, compare_vectors
from .kernels import first_occurrences, group_ids


def nest_link(
    batch: Batch,
    by: Sequence[str],
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
    nest_impl: str,
) -> Batch:
    """Nest *batch* by *by* and apply the linking predicate in one pass.

    Under a spill-enabled governor whose budget the grouping pass would
    breach, the nest runs out-of-core (:mod:`repro.engine.spill`):
    groups are scattered whole over disk partitions and each partition
    re-enters this function with a fitting slice.
    """
    from ..spill import maybe_spill_nest_link

    spilled = maybe_spill_nest_link(
        batch, by, predicate, link, rid_ref, strict, pad_refs, nest_impl
    )
    if spilled is not None:
        return spilled
    metrics = current_metrics()
    n = len(batch)
    with op_span(
        "vec-nest-link",
        contract=CONTRACT_FILTERING,
        impl=nest_impl,
        pred=predicate.describe(),
        by=",".join(by),
        **({"mark": link.mark} if link.mark is not None else {}),
    ) as span:
        metrics.add("rows_nested", n)
        if nest_impl == "sorted":
            metrics.add("rows_sorted", n)
        ids, n_groups = group_ids(batch, by, nest_impl)
        rep = first_occurrences(ids, n_groups)
        metrics.add("linking_evals", n_groups)
        vt, vf = _group_verdict(
            batch, ids, n_groups, rep, predicate, link, rid_ref
        )
        order = np.argsort(rep, kind="stable")  # groups in appearance order
        if link.mark is not None:
            out = batch.take(rep[order]).project(by)
            out = out.with_column(
                Column(link.mark),
                Vector(KIND_BOOL, vt[order], (vt | vf)[order]),
            )
        elif strict:
            keep = order[vt[order]]
            out = batch.take(rep[keep]).project(by)
        else:
            out = batch.take(rep[order]).project(by)
            fail = ~vt[order]
            if fail.any():
                out = _pad_columns(out, pad_refs, fail)
            metrics.add("null_padded_rows", int(fail.sum()))
        if span is not None:
            span.add("rows_in", n)
            span.add("rows_out", len(out))
            if n:
                span.set_max("peak_group", int(np.bincount(ids).max()))
        metrics.add("rows_out", len(out))
    return out


def _group_verdict(
    batch: Batch,
    ids: np.ndarray,
    n_groups: int,
    rep: np.ndarray,
    predicate,
    link,
    rid_ref: str,
):
    """Per-group three-valued verdict as ``(true, false)`` mask arrays."""
    if n_groups == 0:
        z = np.zeros(0, dtype=bool)
        return z, z.copy()
    live = batch.column(rid_ref).valid
    q = predicate.quantifier
    if q in ("exists", "not_exists"):
        live_counts = np.bincount(ids[live], minlength=n_groups)
        t = live_counts > 0 if q == "exists" else live_counts == 0
        return t, ~t
    if q == "agg":
        values = (
            batch.column(link.inner_ref)
            if link.inner_ref is not None
            else None
        )
        agg = _group_aggregate(
            predicate.agg_func, ids, n_groups, live, values
        )
        if predicate.const is not None:
            lhs = Vector.from_scalar(predicate.const[0], n_groups)
        else:
            lhs = batch.column(link.outer_ref).take(rep)
        return compare_vectors(predicate.theta, lhs, agg)
    n = len(batch)
    lhs = (
        batch.column(link.outer_ref)
        if link.outer_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    rhs = (
        batch.column(link.inner_ref)
        if link.inner_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    t, f = compare_vectors(predicate.theta, lhs, rhs)
    some_true = np.bincount(ids[live & t], minlength=n_groups) > 0
    some_false = np.bincount(ids[live & f], minlength=n_groups) > 0
    some_unknown = (
        np.bincount(ids[live & ~t & ~f], minlength=n_groups) > 0
    )
    if q == "some":
        # disjunction: vacuously FALSE on the empty group
        return some_true, ~some_true & ~some_unknown
    # conjunction: vacuously TRUE on the empty group
    return ~some_false & ~some_unknown, some_false


def _group_aggregate(
    func: str,
    ids: np.ndarray,
    n_groups: int,
    live: np.ndarray,
    values: Optional[Vector],
) -> Vector:
    """One SQL aggregate per group, over the live members' non-NULL
    argument values (``count_star`` counts live rows).  Empty or all-NULL
    groups follow SQL: COUNT -> 0, everything else -> NULL."""
    counts = np.bincount(ids[live], minlength=n_groups).astype(np.int64)
    if func == "count_star":
        return Vector(KIND_INT, counts, np.ones(n_groups, dtype=bool))
    mask = (
        live & values.valid
        if values is not None
        else np.zeros(len(ids), dtype=bool)
    )
    arg_counts = np.bincount(ids[mask], minlength=n_groups).astype(np.int64)
    if func == "count":
        return Vector(KIND_INT, arg_counts, np.ones(n_groups, dtype=bool))
    present = arg_counts > 0
    if values is not None and values.kind in NUMERIC_KINDS:
        data = values.data[mask].astype(np.float64)
        gids = ids[mask]
        if func in ("sum", "avg"):
            sums = np.bincount(gids, weights=data, minlength=n_groups)
            if func == "avg":
                return Vector(
                    KIND_FLOAT, sums / np.maximum(arg_counts, 1), present
                )
            if values.kind == KIND_INT:
                return Vector(KIND_INT, sums.astype(np.int64), present)
            return Vector(KIND_FLOAT, sums, present)
        if func in ("min", "max"):
            init = np.inf if func == "min" else -np.inf
            acc = np.full(n_groups, init, dtype=np.float64)
            ufunc = np.minimum if func == "min" else np.maximum
            ufunc.at(acc, gids, data)
            acc = np.where(present, acc, 0.0)
            if values.kind == KIND_INT:
                return Vector(KIND_INT, acc.astype(np.int64), present)
            return Vector(KIND_FLOAT, acc, present)
    # non-numeric argument kinds: per-group Python aggregation
    vals = values.tolist_sql() if values is not None else []
    groups: list = [[] for _ in range(n_groups)]
    for i in np.flatnonzero(mask).tolist():
        groups[ids[i]].append(vals[i])
    return Vector.from_values(
        [
            _finish(func, groups[g], int(counts[g])) if groups[g] else NULL
            for g in range(n_groups)
        ]
    )


def _pad_columns(
    batch: Batch, pad_refs: Sequence[str], fail: np.ndarray
) -> Batch:
    """NULL out the *pad_refs* columns of rows where *fail* is set."""
    positions = set(batch.schema.indices_of(pad_refs))
    cols = [
        Vector(c.kind, c.data, c.valid & ~fail) if i in positions else c
        for i, c in enumerate(batch.columns)
    ]
    return Batch(batch.schema, cols, len(batch))


# --------------------------------------------------------------------- #
# Uncorrelated (virtual Cartesian product) link
# --------------------------------------------------------------------- #


def uncorrelated_link(
    batch: Batch,
    sub: Batch,
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
) -> Batch:
    """Apply a shared-member-set linking predicate to every outer row."""
    metrics = current_metrics()
    n = len(batch)
    with op_span(
        "vec-uncorrelated-link",
        contract=(
            CONTRACT_FILTERING
            if strict and link.mark is None
            else CONTRACT_PRESERVING
        ),
        pred=predicate.describe(),
        **({"mark": link.mark} if link.mark is not None else {}),
    ) as span:
        metrics.add("linking_evals", n)
        vt, vf = _uncorrelated_verdict(batch, sub, predicate, link, rid_ref)
        if link.mark is not None:
            out = batch.with_column(
                Column(link.mark), Vector(KIND_BOOL, vt, vt | vf)
            )
        elif strict:
            out = batch.take(np.flatnonzero(vt))
        else:
            fail = ~vt
            out = _pad_columns(batch, pad_refs, fail) if fail.any() else batch
            metrics.add("null_padded_rows", int(fail.sum()))
        if span is not None:
            span.add("rows_in", n)
            span.add("rows_out", len(out))
        metrics.add("rows_out", len(out))
    return out


def _uncorrelated_verdict(
    batch: Batch, sub: Batch, predicate, link, rid_ref: str
):
    """Per-outer-row three-valued verdict as ``(true, false)`` masks."""
    n = len(batch)
    pk = sub.column(rid_ref)
    live_idx = np.flatnonzero(pk.valid)
    m = len(live_idx)
    q = predicate.quantifier
    if q == "exists":
        t = np.full(n, m > 0, dtype=bool)
        return t, ~t
    if q == "not_exists":
        t = np.full(n, m == 0, dtype=bool)
        return t, ~t
    if q == "agg":
        if link.inner_ref is not None:
            member_vals = sub.column(link.inner_ref).take(live_idx)
            arg = [v for v in member_vals.tolist_sql() if not is_null(v)]
        else:
            arg = []
        agg = _finish(predicate.agg_func, arg, m)
        lhs = (
            Vector.from_scalar(predicate.const[0], n)
            if predicate.const is not None
            else batch.column(link.outer_ref)
        )
        return compare_vectors(predicate.theta, lhs, Vector.from_scalar(agg, n))
    zeros = np.zeros(n, dtype=bool)
    ones = np.ones(n, dtype=bool)
    if m == 0:
        # SOME over ∅ is FALSE, ALL over ∅ vacuously TRUE
        if q == "all":
            return ones, zeros
        return zeros, ones
    lhs = (
        batch.column(link.outer_ref)
        if link.outer_ref is not None
        else Vector.nulls(KIND_INT, n)
    )
    values = (
        sub.column(link.inner_ref).take(live_idx)
        if link.inner_ref is not None
        else Vector.nulls(KIND_INT, m)
    )
    nn_idx = np.flatnonzero(values.valid)
    vals = values.take(nn_idx)
    has_null_member = len(nn_idx) < m
    if len(vals) and not _fast_comparable(lhs, vals):
        # mixed kinds: per-row set-predicate evaluation (row semantics,
        # including TypeError_ on incomparable values)
        members = [(v, 0) for v in values.tolist_sql()]
        t = zeros.copy()
        f = zeros.copy()
        for i, v in enumerate(lhs.tolist_sql()):
            r = predicate.evaluate(v, members)
            if r.is_true():
                t[i] = True
            elif (~r).is_true():
                f[i] = True
        return t, f
    # ∃ member with θ TRUE, and ∃ member with θ FALSE (i.e. ¬θ TRUE);
    # both require non-NULL operand pairs, so the masks are logic-neutral
    if len(vals) == 0:
        some_true = zeros
        some_false = zeros
    else:
        some_true = _exists_test(predicate.theta, lhs.data, vals.data) & lhs.valid
        some_false = (
            _exists_test(negate_op(predicate.theta), lhs.data, vals.data)
            & lhs.valid
        )
    # a NULL-touching comparison exists wherever the lhs is NULL or some
    # member is; it is UNKNOWN in Kleene logic and FALSE in two-valued mode
    nullish = ~lhs.valid | np.full(n, has_null_member, dtype=bool)
    if two_valued():
        if q == "some":
            return some_true, ~some_true
        f = some_false | nullish
        return ~f, f
    if q == "some":
        return some_true, ~some_true & ~nullish
    return ~some_false & ~nullish, some_false


def _exists_test(theta: str, lhs: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """``∃ v ∈ vals: lhs θ v`` for every lhs element (all values non-NULL)."""
    if theta == "=":
        return np.isin(lhs, vals)
    if theta in ("<>", "!="):
        distinct = np.unique(vals)
        if len(distinct) >= 2:
            return np.ones(len(lhs), dtype=bool)
        return lhs != distinct[0]
    if theta == "<":
        return lhs < vals.max()
    if theta == "<=":
        return lhs <= vals.max()
    if theta == ">":
        return lhs > vals.min()
    if theta == ">=":
        return lhs >= vals.min()
    raise AssertionError(f"unexpected linking theta {theta!r}")
