"""Batch kernels: scan, filter, the hash-join family, grouping.

Every kernel processes a whole :class:`~repro.engine.vector.batch.Batch`
per call and runs under one leaf trace span (``vec-*``), charging the
same ambient metric counters the row operators charge
(``rows_scanned``, ``hash_build_rows``, ``hash_probes``,
``predicate_evals``, ``null_padded_rows``, ``rows_out``) — so weighted
costs stay comparable across backends and
:func:`repro.engine.trace.reconcile_with_metrics` holds for traced runs.

Join keys are normalized with the row engine's
:func:`~repro.engine.types.group_key` (ints and floats collide,
booleans do not, NULL never matches), so the matching semantics of the
two backends are identical by construction.

NULL-padding convention (the paper's pk-is-NULL emptiness marker): outer
joins express the padded side as a gather index of ``-1``, which
:meth:`Vector.take_padded` turns into invalid slots — including the
synthetic ``_rid`` column, whose NULL later tells ``nest`` that a group
is empty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..governor import charge_batch, charge_rows
from ..metrics import current_metrics
from ..trace import (
    CONTRACT_EXPANDING,
    CONTRACT_FILTERING,
    CONTRACT_PRESERVING,
    op_span,
)
from .batch import Batch
from .column import Vector
from .exprs import eval_truth


def _note(span, rows_in: int, rows_out: int) -> None:
    if span is not None:
        span.add("rows_in", rows_in)
        span.add("rows_out", rows_out)


# --------------------------------------------------------------------- #
# Scan / filter
# --------------------------------------------------------------------- #


def scan(batch: Batch, alias: str) -> Batch:
    """Account for a base-table scan (the batch itself is cached)."""
    with op_span("vec-scan", contract=CONTRACT_PRESERVING, table=alias) as span:
        current_metrics().add("rows_scanned", len(batch))
        current_metrics().add("rows_out", len(batch))
        _note(span, len(batch), len(batch))
    return batch


def filter_batch(batch: Batch, predicate) -> Batch:
    """Keep rows whose predicate is definitely TRUE."""
    with op_span(
        "vec-filter", contract=CONTRACT_FILTERING, pred=repr(predicate)
    ) as span:
        metrics = current_metrics()
        metrics.add("predicate_evals", len(batch))
        t, _f = eval_truth(predicate, batch)
        out = batch.take(np.flatnonzero(t))
        metrics.add("rows_out", len(out))
        _note(span, len(batch), len(out))
    return out


# --------------------------------------------------------------------- #
# Hash joins
# --------------------------------------------------------------------- #


def _key_rows(batch: Batch, refs: Sequence[str]) -> List[Optional[tuple]]:
    """Per-row composite join key; ``None`` when any component is NULL."""
    key_cols = [batch.column(r).join_keys() for r in refs]
    out: List[Optional[tuple]] = []
    for parts in zip(*key_cols):
        out.append(None if any(p is None for p in parts) else parts)
    return out


def _match_pairs(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """All (left, right) index pairs matching on the equality keys.

    With no keys this degenerates to the full cross product (the
    nested-loop shape the row engine uses in the same situation).
    """
    metrics = current_metrics()
    nl, nr = len(left), len(right)
    if not left_keys:
        metrics.add("rows_scanned", nl * nr)
        li = np.repeat(np.arange(nl, dtype=np.int64), nr)
        ri = np.tile(np.arange(nr, dtype=np.int64), nl)
        return li, ri
    metrics.add("hash_build_rows", nr)
    charge_rows(nr, len(right_keys), "hash-join build")
    index: dict = {}
    for j, key in enumerate(_key_rows(right, right_keys)):
        if key is None:
            continue
        index.setdefault(key, []).append(j)
    metrics.add("hash_probes", nl)
    li: List[int] = []
    ri: List[int] = []
    for i, key in enumerate(_key_rows(left, left_keys)):
        if key is None:
            continue
        for j in index.get(key, ()):
            li.append(i)
            ri.append(j)
    return (
        np.asarray(li, dtype=np.int64),
        np.asarray(ri, dtype=np.int64),
    )


def _residual_keep(joined: Batch, residual) -> np.ndarray:
    """Mask of candidate join rows surviving the residual predicate."""
    current_metrics().add("predicate_evals", len(joined))
    t, _f = eval_truth(residual, joined)
    return t


def hash_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Inner equi-join (plus optional residual predicate).

    Under a spill-enabled governor whose budget the build would breach,
    the join runs out-of-core instead (:mod:`repro.engine.spill`).
    """
    from ..spill import maybe_spill_hash_join

    spilled = maybe_spill_hash_join(
        left, right, left_keys, right_keys, residual, outer=False
    )
    if spilled is not None:
        return spilled
    with op_span(
        "vec-hash-join",
        on=_describe_keys(left_keys, right_keys),
    ) as span:
        li, ri = _match_pairs(left, right, left_keys, right_keys)
        out = Batch.concat_columns(left.take(li), right.take(ri))
        if residual is not None:
            keep = _residual_keep(out, residual)
            out = out.take(np.flatnonzero(keep))
        charge_batch(out, "hash-join output")
        current_metrics().add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


def left_outer_hash_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left outer equi-join; unmatched left rows padded with NULLs.

    The padded right side includes the child's ``_rid`` column, so the
    pk-is-NULL convention marks those rows as "empty subquery set".
    Spills to disk partitions under budget pressure, like ``hash_join``.
    """
    from ..spill import maybe_spill_hash_join

    spilled = maybe_spill_hash_join(
        left, right, left_keys, right_keys, residual, outer=True
    )
    if spilled is not None:
        return spilled
    with op_span(
        "vec-left-outer-hash-join",
        contract=CONTRACT_EXPANDING,
        on=_describe_keys(left_keys, right_keys),
    ) as span:
        metrics = current_metrics()
        li, ri = _match_pairs(left, right, left_keys, right_keys)
        if residual is not None and len(li):
            cand = Batch.concat_columns(left.take(li), right.take(ri))
            keep = _residual_keep(cand, residual)
            li, ri = li[keep], ri[keep]
        matched = np.zeros(len(left), dtype=bool)
        if len(li):
            matched[li] = True
        pad = np.flatnonzero(~matched)
        all_li = np.concatenate([li, pad])
        all_ri = np.concatenate([ri, np.full(len(pad), -1, dtype=np.int64)])
        out = Batch.concat_columns(
            left.take(all_li), right.take_padded(all_ri)
        )
        charge_batch(out, "outer-join output")
        metrics.add("null_padded_rows", len(pad))
        metrics.add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


def semi_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left rows with at least one match (each left row at most once)."""
    with op_span(
        "vec-semi-join",
        contract=CONTRACT_FILTERING,
        on=_describe_keys(left_keys, right_keys),
    ) as span:
        keep = _existence_mask(left, right, left_keys, right_keys, residual)
        out = left.take(np.flatnonzero(keep))
        current_metrics().add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


def anti_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left rows with no match."""
    with op_span(
        "vec-anti-join",
        contract=CONTRACT_FILTERING,
        on=_describe_keys(left_keys, right_keys),
    ) as span:
        keep = _existence_mask(left, right, left_keys, right_keys, residual)
        out = left.take(np.flatnonzero(~keep))
        current_metrics().add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


def _existence_mask(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual,
) -> np.ndarray:
    li, ri = _match_pairs(left, right, left_keys, right_keys)
    if residual is not None and len(li):
        cand = Batch.concat_columns(left.take(li), right.take(ri))
        keep = _residual_keep(cand, residual)
        li = li[keep]
    mask = np.zeros(len(left), dtype=bool)
    if len(li):
        mask[li] = True
    return mask


# --------------------------------------------------------------------- #
# Cross joins
# --------------------------------------------------------------------- #


def cross_join(left: Batch, right: Batch, residual=None) -> Batch:
    """Cartesian product (the vector analogue of a nested-loop join)."""
    with op_span("vec-cross-join") as span:
        li, ri = _match_pairs(left, right, (), ())
        out = Batch.concat_columns(left.take(li), right.take(ri))
        if residual is not None:
            keep = _residual_keep(out, residual)
            out = out.take(np.flatnonzero(keep))
        charge_batch(out, "cross-join output")
        current_metrics().add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


def outer_cross_join(left: Batch, right: Batch) -> Batch:
    """Cross join, except an *empty* right side NULL-pads every left row.

    Mirrors the row engine's :class:`OuterCrossJoin`: the padding only
    happens when the right input is empty (the virtual-Cartesian-product
    emptiness case); otherwise it is a plain cross join.
    """
    with op_span("vec-outer-cross-join", contract=CONTRACT_EXPANDING) as span:
        metrics = current_metrics()
        if len(right) == 0:
            pad = np.full(len(left), -1, dtype=np.int64)
            out = Batch.concat_columns(
                left, right.take_padded(pad)
            )
            metrics.add("null_padded_rows", len(left))
        else:
            li, ri = _match_pairs(left, right, (), ())
            out = Batch.concat_columns(left.take(li), right.take(ri))
        metrics.add("rows_out", len(out))
        _note(span, len(left), len(out))
    return out


# --------------------------------------------------------------------- #
# Grouping (the factorization both nest variants share)
# --------------------------------------------------------------------- #


def group_ids(batch: Batch, by: Sequence[str], method: str) -> Tuple[np.ndarray, int]:
    """Dense group ids over the *by* columns; returns ``(ids, n_groups)``.

    ``method="sorted"`` factorizes each column with ``np.unique``
    (sort-based, fully vectorized — the paper's §5.1 physical nest);
    ``method="hash"`` builds one Python dict over composite group keys
    (hash-based, per-row).  Both agree on SQL grouping semantics: NULLs
    group together, ``2`` and ``2.0`` share a group, booleans do not
    collide with ints.
    """
    n = len(batch)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if not by:
        return np.zeros(n, dtype=np.int64), 1
    charge_rows(n, len(by), "nest grouping")
    if method == "hash":
        key_cols = [batch.column(r).join_keys() for r in by]
        mapping: dict = {}
        ids = np.empty(n, dtype=np.int64)
        for i, parts in enumerate(zip(*key_cols)):
            gid = mapping.get(parts)
            if gid is None:
                gid = len(mapping)
                mapping[parts] = gid
            ids[i] = gid
        return ids, len(mapping)
    codes = [batch.column(r).codes() for r in by]
    _, ids = np.unique(codes[0], return_inverse=True)
    ids = ids.astype(np.int64)
    for c in codes[1:]:
        width = int(c.max()) + 1
        _, ids = np.unique(ids * width + c, return_inverse=True)
        ids = ids.astype(np.int64)
    return ids, int(ids.max()) + 1


def first_occurrences(ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Index of the first row of each group, indexed by group id."""
    if n_groups == 0:
        return np.empty(0, dtype=np.int64)
    first, seen = np.unique(ids, return_index=True)
    out = np.empty(n_groups, dtype=np.int64)
    out[first] = seen
    return out


def _describe_keys(
    left_keys: Sequence[str], right_keys: Sequence[str]
) -> str:
    if not left_keys:
        return "(cross)"
    return ", ".join(f"{l}={r}" for l, r in zip(left_keys, right_keys))
