"""Columnar batch execution engine.

The vector engine is a second physical substrate for the paper's nested
relational algebra: instead of tuple-at-a-time iterators it processes
whole columns as numpy arrays with validity bitmaps (see
:mod:`repro.engine.vector.column` for the NULL encoding and
:mod:`repro.engine.vector.nestlink` for the fused nest + linking
selection).  It is selected through the public API::

    session.prepare(sql).execute(backend="vector")
    session.prepare(sql).execute(strategy="nested-relational-vectorized")

Semantics are identical to the row engine by construction — both
backends execute the same logical plan (Algorithm 1 over the shared
:class:`~repro.core.reduce.BlockJoinPlan`) — and are continuously
checked by the differential fuzzer.
"""

from .batch import Batch, table_batch
from .backend import VectorBackend
from .column import Vector
from .strategy import VectorizedNestedRelationalStrategy

__all__ = [
    "Batch",
    "Vector",
    "VectorBackend",
    "VectorizedNestedRelationalStrategy",
    "table_batch",
]
