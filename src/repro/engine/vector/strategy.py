"""The ``nested-relational-vectorized`` strategy registration.

Algorithm 1's driver (:class:`repro.core.compute.NestedRelationalStrategy`)
is backend-agnostic; this module instantiates it over the columnar
:class:`~repro.engine.vector.backend.VectorBackend` and registers the
result under the ``vector`` backend tag, which is how
``execute(backend="vector")`` and the ``auto`` alias resolve to it.

The default physical nest is the sort-based one (paper §5.1) because
its factorization is fully vectorized; ``nest_impl="hash"`` selects the
dict-based variant (same semantics, per-row key building).
"""

from __future__ import annotations

from ...core.compute import NestedRelationalStrategy
from ...strategies import register
from .backend import VectorBackend


@register(
    "nested-relational-vectorized",
    backend="vector",
    description="Algorithm 1 on the columnar batch engine (vectorized kernels)",
)
class VectorizedNestedRelationalStrategy(NestedRelationalStrategy):
    """Algorithm 1 executed on fixed-layout column batches."""

    name = "nested-relational-vectorized"

    def __init__(
        self,
        virtual_cartesian: bool = True,
        nest_impl: str = "sorted",
        strict_when_positive: bool = True,
    ):
        super().__init__(
            virtual_cartesian=virtual_cartesian,
            nest_impl=nest_impl,
            strict_when_positive=strict_when_positive,
            backend=VectorBackend(),
        )
