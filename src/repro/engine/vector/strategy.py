"""The ``nested-relational-vectorized`` strategy registration.

Algorithm 1's driver (:class:`repro.core.compute.NestedRelationalStrategy`)
is backend-agnostic; this module instantiates it over the columnar
:class:`~repro.engine.vector.backend.VectorBackend` and registers the
result under the ``vector`` backend tag, which is how
``execute(backend="vector")`` and the ``auto`` alias resolve to it.

The default physical nest is the sort-based one (paper §5.1) because
its factorization is fully vectorized; ``nest_impl="hash"`` selects the
dict-based variant (same semantics, per-row key building).

``nested-relational-parallel`` is the same driver over the
morsel-driven :class:`~repro.engine.parallel.ParallelVectorBackend`:
shared-build morsel joins and partition-parallel nest on a worker pool
(default width ``os.cpu_count()``, overridable per call via
``threads=`` / ``--threads`` or the ``REPRO_THREADS`` environment
variable).
"""

from __future__ import annotations

from typing import Optional

from ...core.compute import NestedRelationalStrategy
from ...core.optimizer import cost_parallel, cost_vectorized
from ...strategies import register
from .backend import VectorBackend


@register(
    "nested-relational-vectorized",
    backend="vector",
    description="Algorithm 1 on the columnar batch engine (vectorized kernels)",
    cost=cost_vectorized,
)
class VectorizedNestedRelationalStrategy(NestedRelationalStrategy):
    """Algorithm 1 executed on fixed-layout column batches."""

    name = "nested-relational-vectorized"

    def __init__(
        self,
        virtual_cartesian: bool = True,
        nest_impl: str = "sorted",
        strict_when_positive: bool = True,
    ):
        super().__init__(
            virtual_cartesian=virtual_cartesian,
            nest_impl=nest_impl,
            strict_when_positive=strict_when_positive,
            backend=VectorBackend(),
        )


@register(
    "nested-relational-parallel",
    backend="vector",
    description=(
        "Algorithm 1 with morsel-driven parallel kernels "
        "(shared-build morsel joins, partition-parallel nest)"
    ),
    cost=cost_parallel,
)
class ParallelNestedRelationalStrategy(NestedRelationalStrategy):
    """Algorithm 1 on morsels over a worker pool."""

    name = "nested-relational-parallel"
    #: where the governor's ``degrade='sequential'`` ladder retries a
    #: failed parallel execution: same plan, single-threaded kernels
    degrade_target = "nested-relational-vectorized"

    def __init__(
        self,
        threads: Optional[int] = None,
        min_partition_rows: Optional[int] = None,
        virtual_cartesian: bool = True,
        nest_impl: str = "sorted",
        strict_when_positive: bool = True,
    ):
        # deferred: repro.engine.parallel itself imports this package
        from ..parallel import ParallelVectorBackend

        super().__init__(
            virtual_cartesian=virtual_cartesian,
            nest_impl=nest_impl,
            strict_when_positive=strict_when_positive,
            backend=ParallelVectorBackend(
                threads=threads, min_partition_rows=min_partition_rows
            ),
        )

    @property
    def threads(self) -> int:
        return self.backend.threads

    def set_threads(self, threads: int) -> None:
        """The planner's ``threads=`` plumbing (idempotent)."""
        self.backend.set_threads(threads)
