"""Morsel-driven parallel execution for the columnar batch engine.

The vectorized backend (:mod:`repro.engine.vector`) processes whole
batches per operator but still runs one operator at a time on one
thread, and its hash joins build Python dicts row by row.  This module
adds the two missing levels of data parallelism, in the morsel-driven
style (Leis et al.):

* **shared-build morsel joins** — the build side of an equi-join is
  materialized once on the main thread as a read-only sorted structure,
  and the probe side is cut into contiguous zero-copy morsels that
  binary-search it concurrently.  The equi-match itself is fully
  vectorized: the two sides' key columns are factorized into one shared
  dense code domain (``np.unique`` over the concatenated values, which
  preserves the row engine's key semantics: ints and floats collide,
  booleans do not, NULL never matches) and matches come from a stable
  ``argsort`` + ``searchsorted`` over the build codes — no per-row
  Python at all, and no partition gather of the inputs (the only
  fancy-index copies are proportional to the join output).
* **partition-parallel nest + fused nest-link** — the fused
  nest-linking kernel groups by the nesting attributes; hash
  partitioning *on those attributes* keeps every nest group inside one
  partition, so partitions are processed independently and their
  outputs concatenated.  The pk-is-NULL padding convention is
  per-tuple and unaffected.
* **morsel slicing** for operators with no key to partition on
  (cross joins, the shared-subquery uncorrelated link, scans/filters):
  the input is cut into contiguous row ranges.

Work is dispatched by a :class:`MorselScheduler` onto a process-wide
thread pool (default width ``os.cpu_count()``).  Each morsel runs under
its *own* ambient metrics scope and tracer (both are thread-local, see
:mod:`repro.engine.metrics` / :mod:`repro.engine.trace`); after the
workers join, the scheduler merges the metric deltas into the caller's
scope and grafts each morsel's span tree under the dispatching
operator's span as ``kind="morsel"`` children — so EXPLAIN ANALYZE, the
trace schema and the trace invariants (including exact Metrics
reconciliation) keep working unchanged.

Inputs smaller than ``min_partition_rows`` are delegated to the
sequential kernels — correct either way, and it keeps the fuzzer's tiny
cases and the scheduler's overhead off each other's backs.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidArgumentError
from .logic import current_logic, logic_mode
from .governor import (
    charge_batch,
    checkpoint,
    current_governor,
    governed,
    maybe_worker_crash,
)
from .metrics import collect, current_metrics
from .trace import (
    CONTRACT_EXPANDING,
    CONTRACT_FILTERING,
    CONTRACT_PRESERVING,
    KIND_MORSEL,
    Span,
    current_tracer,
    op_span,
    tracing,
)
from .vector import kernels, nestlink
from .vector.backend import VectorBackend
from .vector.batch import Batch
from .vector.column import KIND_BOOL, KIND_FLOAT, KIND_INT, KIND_STR, Vector

#: below this many input rows an operator stays on the sequential kernel
DEFAULT_MIN_PARTITION_ROWS = 2048

#: ints above this lose precision as float64; mixed int/float keys near
#: the boundary fall back to the sequential (exact) dict join
_FLOAT_EXACT_INT = 2 ** 53


def validate_threads(value, source: str = "threads") -> Optional[int]:
    """Validate a worker-count setting; returns the int (or None).

    Shared by every entry point that accepts a thread count
    (:func:`repro.connect`, ``--threads``, ``REPRO_THREADS``,
    ``set_threads``), so a bad value fails identically everywhere with
    :class:`~repro.errors.InvalidArgumentError` instead of being
    silently clamped.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise InvalidArgumentError(
            f"{source} must be an integer >= 1, got {value!r}"
        )
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise InvalidArgumentError(
                f"{source} must be an integer >= 1, got {value!r}"
            ) from None
    if not isinstance(value, int):
        raise InvalidArgumentError(
            f"{source} must be an integer >= 1, got {value!r}"
        )
    if value < 1:
        raise InvalidArgumentError(
            f"{source} must be >= 1, got {value}; pass 1 for sequential "
            f"execution"
        )
    return value


def default_threads() -> int:
    """The scheduler's default worker count: ``REPRO_THREADS`` env var
    if set, else ``os.cpu_count()``.

    A malformed ``REPRO_THREADS`` raises instead of silently falling
    back — a typo'd CI matrix entry must not quietly change the tested
    configuration.
    """
    env = os.environ.get("REPRO_THREADS")
    if env and env.strip():
        return validate_threads(env, "REPRO_THREADS")
    return os.cpu_count() or 1


def default_min_partition_rows() -> int:
    """The partitioning threshold: ``REPRO_MIN_PARTITION_ROWS`` env var
    if set (the fuzz CI job sets it to 1 so even tiny differential cases
    exercise the partitioned kernels), else
    :data:`DEFAULT_MIN_PARTITION_ROWS`."""
    env = os.environ.get("REPRO_MIN_PARTITION_ROWS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_MIN_PARTITION_ROWS


# --------------------------------------------------------------------- #
# The shared worker pool
# --------------------------------------------------------------------- #

_pools: Dict[int, ThreadPoolExecutor] = {}
_pools_lock = threading.Lock()


def _pool(workers: int) -> ThreadPoolExecutor:
    """A process-wide pool per width; morsels are pure (each installs its
    own ambient scopes) so sharing across schedulers is safe."""
    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-morsel"
            )
            _pools[workers] = pool
        return pool


class MorselScheduler:
    """Runs per-partition tasks, isolating and re-merging their ambient
    metrics and trace spans.

    *threads* <= 1 executes morsels inline (same span/metrics shape, no
    pool), which keeps 1-thread and N-thread runs byte-comparable.
    """

    def __init__(
        self,
        threads: Optional[int] = None,
        min_partition_rows: Optional[int] = None,
    ):
        validated = validate_threads(threads)
        self.threads = validated if validated is not None else default_threads()
        self.min_partition_rows = (
            min_partition_rows
            if min_partition_rows is not None
            else default_min_partition_rows()
        )

    # ------------------------------------------------------------------ #

    def sequential(self, n_rows: int) -> bool:
        """Whether an operator over *n_rows* should skip partitioning.

        One worker still takes the partitioned path: the shared-build
        codes kernels beat the sequential dict kernels even on a single
        core (``threads=0`` is rejected at construction, not treated as
        a sequential spelling).
        """
        return n_rows < max(1, self.min_partition_rows)

    def partition_count(self, n_rows: int) -> int:
        """Number of hash partitions for an *n_rows* input."""
        if self.min_partition_rows > 0:
            fitting = max(1, n_rows // self.min_partition_rows)
        else:
            fitting = max(1, self.threads)
        return max(1, min(max(1, self.threads), fitting))

    # ------------------------------------------------------------------ #

    def run(
        self,
        tasks: Sequence[Callable[[Optional[Span]], object]],
        parent: Optional[Span],
    ) -> List[object]:
        """Execute every task, one morsel each, and return their results
        in task order.

        Each task receives its (possibly ``None``) morsel span.  Metric
        deltas are merged into the caller's ambient scope and span trees
        are grafted under *parent* after all tasks complete.

        **Clean drain on failure**: a morsel that raises does not poison
        the pool — every submitted future still runs to completion, every
        morsel's metric deltas are merged and every (possibly aborted)
        span tree is grafted, and only *then* is the first error in task
        order re-raised.  That keeps partial traces structurally valid
        (aborted spans are skipped by the contract checks) and Metrics
        reconciliation exact even for failed or degraded executions.

        The dispatching thread's ambient :class:`ResourceGovernor` is
        re-installed inside each worker (same object — shared deadline,
        budget and cancellation token), and each morsel passes a
        :func:`~repro.engine.governor.checkpoint` before doing work.
        """
        traced = parent is not None and current_tracer() is not None
        governor = current_governor()
        # the ambient logic mode is a ContextVar and does not cross into
        # pool threads by itself — re-install it inside every morsel
        mode = current_logic()

        def harness(
            index: int, task, pooled: bool
        ) -> Tuple[object, Dict[str, int], list, Optional[Exception]]:
            value: object = None
            roots: list = []
            err: Optional[Exception] = None
            with governed(governor), logic_mode(mode), collect() as local:
                try:
                    if pooled:
                        maybe_worker_crash()
                    checkpoint("morsel")
                    if not traced:
                        value = task(None)
                    else:
                        with tracing() as trace:
                            try:
                                with op_span(
                                    f"morsel[{index}]",
                                    kind=KIND_MORSEL,
                                    part=index,
                                ) as span:
                                    value = task(span)
                            finally:
                                roots = trace.roots
                except Exception as exc:
                    err = exc
            return value, local.counters, roots, err

        if self.threads <= 1 or len(tasks) <= 1:
            outcomes = [harness(i, t, False) for i, t in enumerate(tasks)]
        else:
            pool = _pool(self.threads)
            futures = [
                pool.submit(harness, i, t, True) for i, t in enumerate(tasks)
            ]
            outcomes = [f.result() for f in futures]

        metrics = current_metrics()
        results: List[object] = []
        first_err: Optional[Exception] = None
        for value, counters, roots, err in outcomes:
            for name, amount in counters.items():
                metrics.add(name, amount)
            if parent is not None:
                parent.children.extend(roots)
            if err is not None and first_err is None:
                first_err = err
            results.append(value)
        if first_err is not None:
            raise first_err
        return results


# --------------------------------------------------------------------- #
# Shared dense join codes (the vectorized replacement for _key_rows)
# --------------------------------------------------------------------- #


def _code_kind(a: Vector, b: Vector) -> Optional[str]:
    """The common layout two key columns can be factorized on, or None
    when only the per-row ``group_key`` fallback is exact."""
    if a.kind in (KIND_INT, KIND_FLOAT) and b.kind in (KIND_INT, KIND_FLOAT):
        return KIND_INT if a.kind == b.kind == KIND_INT else KIND_FLOAT
    if a.kind == b.kind and a.kind in (KIND_BOOL, KIND_STR):
        return a.kind
    return None


def _as_float_exact(v: Vector) -> Optional[np.ndarray]:
    """*v*'s data as float64, or None when the cast would lose int
    precision (caller falls back to the sequential join)."""
    if v.kind == KIND_INT and len(v.data):
        live = v.data[v.valid]
        if len(live) and np.abs(live).max() >= _FLOAT_EXACT_INT:
            return None
    return v.data.astype(np.float64)


def joint_codes(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Factorize both sides' composite join keys into one dense int64
    code domain: equal codes match; ``-1`` marks a NULL component.

    Returns None when any column pair mixes kinds the vectorized path
    cannot normalize exactly (object columns, bool vs int, oversized
    ints next to floats) — the caller then delegates to the sequential
    dict-based kernel, which evaluates the row engine's ``group_key``
    per row.
    """
    nl, nr = len(left), len(right)
    codes_l = np.zeros(nl, dtype=np.int64)
    codes_r = np.zeros(nr, dtype=np.int64)
    null_l = np.zeros(nl, dtype=bool)
    null_r = np.zeros(nr, dtype=bool)
    first = True
    for lk, rk in zip(left_keys, right_keys):
        a, b = left.column(lk), right.column(rk)
        kind = _code_kind(a, b)
        if kind is None:
            return None
        if kind == KIND_FLOAT:
            la, rb = _as_float_exact(a), _as_float_exact(b)
            if la is None or rb is None:
                return None
        else:
            la, rb = a.data, b.data
        _, inv = np.unique(np.concatenate([la, rb]), return_inverse=True)
        inv = np.asarray(inv, dtype=np.int64).reshape(-1)
        ci, cr = inv[:nl], inv[nl:]
        if first:
            codes_l, codes_r = ci, cr
            first = False
        else:
            width = int(max(ci.max(initial=0), cr.max(initial=0))) + 1
            combined = np.concatenate(
                [codes_l * width + ci, codes_r * width + cr]
            )
            _, inv2 = np.unique(combined, return_inverse=True)
            inv2 = np.asarray(inv2, dtype=np.int64).reshape(-1)
            codes_l, codes_r = inv2[:nl], inv2[nl:]
        null_l |= ~a.valid
        null_r |= ~b.valid
    codes_l = np.where(null_l, np.int64(-1), codes_l)
    codes_r = np.where(null_r, np.int64(-1), codes_r)
    return codes_l, codes_r


def build_side(codes_r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The shared read-only build structure of an equi-join.

    Returns ``(sorted_codes, build_rows)``: the non-NULL right-side
    codes in ascending order and the right positions that produced
    them (stable, so ties keep build order).  Built once on the main
    thread; every probe morsel binary-searches it concurrently.
    """
    build = np.flatnonzero(codes_r >= 0)
    order = np.argsort(codes_r[build], kind="stable")
    build_rows = build[order]
    return codes_r[build_rows], build_rows


def probe_match(
    sorted_codes: np.ndarray,
    build_rows: np.ndarray,
    probe_codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All (probe, build) position pairs for one probe morsel.

    ``probe`` positions are local to the morsel; ``build`` positions
    are global right-side rows.  NULL probe codes (``-1``) sort below
    every build code, so their searchsorted window is empty — they
    never match, same as the sequential dict join.  Pair order matches
    the sequential kernel: ascending probe position, build order
    within one key.
    """
    if len(build_rows) == 0 or len(probe_codes) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    li = np.repeat(np.arange(len(probe_codes), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    ri = build_rows[np.repeat(lo, counts) + within]
    return li, ri


def equi_match(
    codes_l: np.ndarray, codes_r: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (left, right) position pairs with equal non-NULL codes.

    Pair order matches the sequential dict join: ascending left
    position, build order within one key.
    """
    sorted_codes, build_rows = build_side(codes_r)
    return probe_match(sorted_codes, build_rows, codes_l)


def hash_partitions(codes: np.ndarray, n_parts: int) -> List[np.ndarray]:
    """Row positions per hash partition of the code column.

    NULL codes (``-1``) land in the last partition; they never match
    anyway, and outer joins must keep carrying them for padding.
    """
    if n_parts <= 1:
        return [np.arange(len(codes), dtype=np.int64)]
    part = codes % n_parts
    return [np.flatnonzero(part == p) for p in range(n_parts)]


def _vstack_all(batches: Sequence[Batch]) -> Batch:
    """Concatenate morsel outputs in order, one copy per column.

    Morsel outputs share their operator's schema and column kinds (they
    are gathers of the same parent columns), so the common case is a
    single ``np.concatenate`` per column; mismatched kinds (e.g. an
    all-NULL padded partition that degraded to a different layout) fall
    back to the pairwise promoting vstack.
    """
    parts = [b for b in batches if b is not None]
    assert parts, "vstack of no batches"
    if len(parts) == 1:
        charge_batch(parts[0], "morsel output materialization")
        return parts[0]
    first = parts[0]
    columns = []
    for i in range(len(first.columns)):
        vecs = [b.columns[i] for b in parts]
        kind = vecs[0].kind
        if all(v.kind == kind for v in vecs):
            columns.append(
                Vector(
                    kind,
                    np.concatenate([v.data for v in vecs]),
                    np.concatenate([v.valid for v in vecs]),
                )
            )
        else:
            col = vecs[0]
            for v in vecs[1:]:
                col = Vector.vstack(col, v)
            columns.append(col)
    out = Batch(first.schema, columns, sum(len(b) for b in parts))
    charge_batch(out, "morsel output materialization")
    return out


def _describe_keys(left_keys: Sequence[str], right_keys: Sequence[str]) -> str:
    if not left_keys:
        return "(cross)"
    return ", ".join(f"{l}={r}" for l, r in zip(left_keys, right_keys))


def _note(span: Optional[Span], rows_in: int, rows_out: int) -> None:
    if span is not None:
        span.add("rows_in", rows_in)
        span.add("rows_out", rows_out)


# --------------------------------------------------------------------- #
# Shared-build morsel join family
# --------------------------------------------------------------------- #


def _prepare_join(
    sched: MorselScheduler,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
):
    """Codes + shared build structure + contiguous probe slices for a
    morsel-parallel equi-join, or None when the operator should run on
    the sequential kernel.

    The build side is materialized once on the main thread; probe
    morsels are zero-copy contiguous ranges of the left side, so the
    only gathers are proportional to output size.
    """
    if not left_keys or len(left) == 0:
        return None
    if sched.sequential(len(left) + len(right)):
        return None
    codes = joint_codes(left, right, left_keys, right_keys)
    if codes is None:
        return None
    codes_l, codes_r = codes
    sorted_codes, build_rows = build_side(codes_r)
    governor = current_governor()
    if governor is not None and governor.memory_limit_bytes is not None:
        governor.charge(
            codes_l.nbytes + sorted_codes.nbytes + build_rows.nbytes,
            "morsel-join build structure",
        )
    return codes_l, sorted_codes, build_rows, _row_slices(sched, len(left))


def hash_join(
    sched: MorselScheduler,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Inner equi-join: shared sorted build side, probe morsels."""
    prep = _prepare_join(sched, left, right, left_keys, right_keys)
    if prep is None:
        return kernels.hash_join(left, right, left_keys, right_keys, residual)
    codes_l, sorted_codes, build_rows, slices = prep
    with op_span(
        "par-hash-join",
        on=_describe_keys(left_keys, right_keys),
        threads=sched.threads,
        parts=len(slices),
    ) as span:
        current_metrics().add("hash_build_rows", len(right))

        def task_for(lo: int, hi: int):
            def task(mspan: Optional[Span]) -> Batch:
                metrics = current_metrics()
                metrics.add("hash_probes", hi - lo)
                li, ri = probe_match(
                    sorted_codes, build_rows, codes_l[lo:hi]
                )
                out = Batch.concat_columns(
                    left.take(li + lo), right.take(ri)
                )
                if residual is not None:
                    keep = kernels._residual_keep(out, residual)
                    out = out.take(np.flatnonzero(keep))
                _note(mspan, hi - lo, len(out))
                return out

            return task

        outs = sched.run(
            [task_for(lo, hi) for lo, hi in slices], span
        )
        result = _vstack_all(outs)
        current_metrics().add("rows_out", len(result))
        _note(span, len(left), len(result))
    return result


def left_outer_hash_join(
    sched: MorselScheduler,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left outer equi-join; unmatched left rows NULL-padded (including
    the child's ``_rid``, preserving the pk-is-NULL convention)."""
    prep = _prepare_join(sched, left, right, left_keys, right_keys)
    if prep is None:
        return kernels.left_outer_hash_join(
            left, right, left_keys, right_keys, residual
        )
    codes_l, sorted_codes, build_rows, slices = prep
    with op_span(
        "par-left-outer-hash-join",
        contract=CONTRACT_EXPANDING,
        on=_describe_keys(left_keys, right_keys),
        threads=sched.threads,
        parts=len(slices),
    ) as span:
        current_metrics().add("hash_build_rows", len(right))

        def task_for(lo: int, hi: int):
            def task(mspan: Optional[Span]) -> Batch:
                metrics = current_metrics()
                metrics.add("hash_probes", hi - lo)
                li, ri = probe_match(
                    sorted_codes, build_rows, codes_l[lo:hi]
                )
                if residual is not None and len(li):
                    cand = Batch.concat_columns(
                        left.take(li + lo), right.take(ri)
                    )
                    keep = kernels._residual_keep(cand, residual)
                    li, ri = li[keep], ri[keep]
                matched = np.zeros(hi - lo, dtype=bool)
                if len(li):
                    matched[li] = True
                pad = np.flatnonzero(~matched)
                all_li = np.concatenate([li, pad]) + lo
                all_ri = np.concatenate(
                    [ri, np.full(len(pad), -1, dtype=np.int64)]
                )
                out = Batch.concat_columns(
                    left.take(all_li), right.take_padded(all_ri)
                )
                metrics.add("null_padded_rows", len(pad))
                _note(mspan, hi - lo, len(out))
                return out

            return task

        outs = sched.run(
            [task_for(lo, hi) for lo, hi in slices], span
        )
        result = _vstack_all(outs)
        current_metrics().add("rows_out", len(result))
        _note(span, len(left), len(result))
    return result


def _partitioned_existence(
    sched: MorselScheduler,
    name: str,
    negate: bool,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual,
) -> Optional[Batch]:
    prep = _prepare_join(sched, left, right, left_keys, right_keys)
    if prep is None:
        return None
    codes_l, sorted_codes, build_rows, slices = prep
    with op_span(
        name,
        contract=CONTRACT_FILTERING,
        on=_describe_keys(left_keys, right_keys),
        threads=sched.threads,
        parts=len(slices),
    ) as span:
        current_metrics().add("hash_build_rows", len(right))

        def task_for(lo: int, hi: int):
            def task(mspan: Optional[Span]) -> Batch:
                metrics = current_metrics()
                metrics.add("hash_probes", hi - lo)
                li, ri = probe_match(
                    sorted_codes, build_rows, codes_l[lo:hi]
                )
                if residual is not None and len(li):
                    cand = Batch.concat_columns(
                        left.take(li + lo), right.take(ri)
                    )
                    keep = kernels._residual_keep(cand, residual)
                    li = li[keep]
                mask = np.zeros(hi - lo, dtype=bool)
                if len(li):
                    mask[li] = True
                keep_rows = np.flatnonzero(~mask if negate else mask) + lo
                out = left.take(keep_rows)
                _note(mspan, hi - lo, len(out))
                return out

            return task

        outs = sched.run(
            [task_for(lo, hi) for lo, hi in slices], span
        )
        result = _vstack_all(outs)
        current_metrics().add("rows_out", len(result))
        _note(span, len(left), len(result))
    return result


def semi_join(
    sched: MorselScheduler,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left rows with at least one match (each left row at most once)."""
    out = _partitioned_existence(
        sched, "par-semi-join", False, left, right, left_keys, right_keys,
        residual,
    )
    if out is None:
        return kernels.semi_join(left, right, left_keys, right_keys, residual)
    return out


def anti_join(
    sched: MorselScheduler,
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    residual=None,
) -> Batch:
    """Left rows with no match."""
    out = _partitioned_existence(
        sched, "par-anti-join", True, left, right, left_keys, right_keys,
        residual,
    )
    if out is None:
        return kernels.anti_join(left, right, left_keys, right_keys, residual)
    return out


# --------------------------------------------------------------------- #
# Morsel-sliced operators (no partitioning key)
# --------------------------------------------------------------------- #


def _row_slices(sched: MorselScheduler, n: int) -> List[Tuple[int, int]]:
    n_parts = sched.partition_count(n)
    bounds = np.linspace(0, n, n_parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_parts)
        if bounds[i + 1] > bounds[i]
    ]


def _slice_batch(batch: Batch, lo: int, hi: int) -> Batch:
    """A contiguous row range as numpy views — no gather, no copy."""
    if lo == 0 and hi == len(batch):
        return batch
    return Batch(
        batch.schema,
        [Vector(c.kind, c.data[lo:hi], c.valid[lo:hi]) for c in batch.columns],
        hi - lo,
    )


def _sliced(
    sched: MorselScheduler,
    name: str,
    contract: Optional[str],
    batch: Batch,
    body: Callable[[Batch], Batch],
    **attrs,
) -> Batch:
    """Run *body* over contiguous row ranges of *batch* and concatenate."""
    slices = _row_slices(sched, len(batch))
    with op_span(
        name,
        contract=contract,
        threads=sched.threads,
        parts=len(slices),
        **attrs,
    ) as span:
        def task_for(lo: int, hi: int):
            def task(mspan: Optional[Span]) -> Batch:
                out = body(_slice_batch(batch, lo, hi))
                _note(mspan, hi - lo, len(out))
                return out

            return task

        outs = sched.run([task_for(lo, hi) for lo, hi in slices], span)
        result = _vstack_all(outs)
        _note(span, len(batch), len(result))
    return result


def cross_join(
    sched: MorselScheduler, left: Batch, right: Batch, residual=None
) -> Batch:
    """Cartesian product, left side sliced into morsels."""
    if sched.sequential(len(left)) or len(right) == 0:
        return kernels.cross_join(left, right, residual)
    return _sliced(
        sched,
        "par-cross-join",
        None,
        left,
        lambda part: kernels.cross_join(part, right, residual),
    )


def outer_cross_join(
    sched: MorselScheduler, left: Batch, right: Batch
) -> Batch:
    """Cross join that NULL-pads every left row when the right side is
    empty (the virtual-Cartesian-product emptiness case)."""
    if sched.sequential(len(left)):
        return kernels.outer_cross_join(left, right)
    return _sliced(
        sched,
        "par-outer-cross-join",
        CONTRACT_EXPANDING,
        left,
        lambda part: kernels.outer_cross_join(part, right),
    )


def filter_batch(sched: MorselScheduler, batch: Batch, predicate) -> Batch:
    """Keep rows whose predicate is definitely TRUE, morsel by morsel."""
    if sched.sequential(len(batch)):
        return kernels.filter_batch(batch, predicate)
    return _sliced(
        sched,
        "par-filter",
        CONTRACT_FILTERING,
        batch,
        lambda part: kernels.filter_batch(part, predicate),
        pred=repr(predicate),
    )


def uncorrelated_link(
    sched: MorselScheduler,
    batch: Batch,
    sub: Batch,
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
) -> Batch:
    """The virtual-Cartesian-product link, outer side sliced into
    morsels (the shared member set is read-only)."""
    if sched.sequential(len(batch)):
        return nestlink.uncorrelated_link(
            batch, sub, predicate, link, rid_ref, strict, pad_refs
        )
    return _sliced(
        sched,
        "par-uncorrelated-link",
        (
            CONTRACT_FILTERING
            if strict and link.mark is None
            else CONTRACT_PRESERVING
        ),
        batch,
        lambda part: nestlink.uncorrelated_link(
            part, sub, predicate, link, rid_ref, strict, pad_refs
        ),
        pred=predicate.describe(),
    )


# --------------------------------------------------------------------- #
# Partition-parallel nest + fused nest-link
# --------------------------------------------------------------------- #


def nest_link(
    sched: MorselScheduler,
    batch: Batch,
    by: Sequence[str],
    predicate,
    link,
    rid_ref: str,
    strict: bool,
    pad_refs: Sequence[str],
    nest_impl: str,
) -> Batch:
    """Fused nest + linking selection over hash partitions of the nest
    key.

    Partitioning on the group ids keeps every nest group whole inside
    one partition (groups are disjoint across partitions), so each
    partition runs the sequential fused kernel independently.
    """
    n = len(batch)
    if sched.sequential(n) or not by:
        return nestlink.nest_link(
            batch, by, predicate, link, rid_ref, strict, pad_refs, nest_impl
        )
    ids, n_groups = kernels.group_ids(batch, by, nest_impl)
    n_parts = min(sched.partition_count(n), max(1, n_groups))
    if n_parts <= 1:
        return nestlink.nest_link(
            batch, by, predicate, link, rid_ref, strict, pad_refs, nest_impl
        )
    parts = hash_partitions(ids, n_parts)
    with op_span(
        "par-nest-link",
        contract=CONTRACT_FILTERING,
        impl=nest_impl,
        pred=predicate.describe(),
        by=",".join(by),
        threads=sched.threads,
        parts=len(parts),
    ) as span:
        def task_for(idx: np.ndarray):
            def task(mspan: Optional[Span]) -> Batch:
                out = nestlink.nest_link(
                    batch.take(idx), by, predicate, link, rid_ref, strict,
                    pad_refs, nest_impl,
                )
                _note(mspan, len(idx), len(out))
                return out

            return task

        outs = sched.run(
            [task_for(idx) for idx in parts if len(idx)], span
        )
        result = _vstack_all(outs)
        _note(span, n, len(result))
    return result


# --------------------------------------------------------------------- #
# The operator factory
# --------------------------------------------------------------------- #


class ParallelVectorBackend(VectorBackend):
    """The columnar operator factory with morsel-driven parallel kernels.

    Plugs into Algorithm 1 through the same protocol as
    :class:`~repro.engine.vector.backend.VectorBackend`; only the
    physical kernels differ, so semantics are fixed by the shared
    :class:`~repro.core.reduce.BlockJoinPlan` exactly as for the other
    backends.
    """

    kind = "vector"

    def __init__(
        self,
        threads: Optional[int] = None,
        min_partition_rows: Optional[int] = None,
    ):
        self.scheduler = MorselScheduler(
            threads=threads, min_partition_rows=min_partition_rows
        )

    @property
    def threads(self) -> int:
        return self.scheduler.threads

    def set_threads(self, threads: int) -> None:
        value = validate_threads(threads)
        if value is None:
            raise InvalidArgumentError(
                "threads must be an integer >= 1, got None"
            )
        self.scheduler.threads = value

    # -- reduce-plan kernels (used by _reduce_block) -------------------- #

    def _kernel_hash_join(self, left, right, left_keys, right_keys, residual):
        return hash_join(
            self.scheduler, left, right, left_keys, right_keys, residual
        )

    def _kernel_cross_join(self, left, right, residual):
        return cross_join(self.scheduler, left, right, residual)

    def _kernel_filter(self, batch, predicate):
        return filter_batch(self.scheduler, batch, predicate)

    # -- way down ------------------------------------------------------- #

    def left_outer_join(self, rel, child, outer_keys, inner_keys, residual):
        return left_outer_hash_join(
            self.scheduler, rel, child, outer_keys, inner_keys, residual
        )

    def outer_cross_join(self, rel, child):
        return outer_cross_join(self.scheduler, rel, child)

    # -- way up --------------------------------------------------------- #

    def nest_link(
        self, rel, by, keep, predicate, link, rid_ref, strict, pad_refs,
        nest_impl,
    ):
        return nest_link(
            self.scheduler, rel, by, predicate, link, rid_ref, strict,
            pad_refs, nest_impl,
        )

    # -- virtual Cartesian product -------------------------------------- #

    def uncorrelated_link(
        self, rel, sub, predicate, link, rid_ref, strict, pad_refs
    ):
        return uncorrelated_link(
            self.scheduler, rel, sub, predicate, link, rid_ref, strict,
            pad_refs,
        )
