"""Out-of-core columnar storage: write-once mmap column files.

A *store* is a directory holding one ``.npy`` file per column (written
with :func:`numpy.lib.format.open_memmap`, so it can be memory-mapped
back without copying), an optional packed validity bitmap per nullable
column (``np.packbits`` of the boolean valid mask), and one
``manifest.json`` describing every table: row count, per-column kind
(``i8``/``f8``/``bool``/fixed-width ``str``), NOT NULL flags, and exact
per-column statistics (NDV, null fraction, min, max) computed once at
write time — so :mod:`repro.core.stats` can skip sampling entirely.

Reading side: :class:`StoredRelation` subclasses
:class:`~repro.engine.relation.Relation` but keeps its data as
memory-mapped :class:`~repro.engine.vector.column.Vector` columns.  The
vectorized backend gets the mmap batch zero-copy via
:meth:`StoredRelation.stored_batch`; row strategies and the oracle
adapters keep working unchanged through the lazy ``rows`` property (the
row-iterator shim), which materializes Python tuples only on first
access.

The format is write-once: a store is produced in full by
:class:`StoreWriter` (normally via ``repro gen`` /
:func:`repro.tpch.datagen.generate_stored`) and never mutated.  Writers
are chunked so generation never holds a full table in memory.
"""

from __future__ import annotations

import json
import os
import hashlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CatalogError
from .catalog import Database
from .relation import Relation, Row
from .schema import Column, Schema
from .vector.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJ,
    KIND_STR,
    Vector,
)

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: column kinds a store can hold (``obj`` columns have no fixed-width
#: on-disk layout and are rejected at write time)
STORABLE_KINDS = (KIND_INT, KIND_FLOAT, KIND_BOOL, KIND_STR)

_DTYPES = {KIND_INT: np.dtype(np.int64), KIND_FLOAT: np.dtype(np.float64),
           KIND_BOOL: np.dtype(bool)}


def _resolve_kind(kinds: set) -> str:
    """Final column kind from the set of (non-all-NULL) chunk kinds."""
    if not kinds:
        return KIND_INT  # an all-NULL column: carried on the int layout
    if len(kinds) == 1:
        return next(iter(kinds))
    if kinds <= {KIND_INT, KIND_FLOAT}:
        return KIND_FLOAT
    raise CatalogError(f"column mixes unstorable kinds {sorted(kinds)!r}")


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #


class TableWriter:
    """Chunked writer for one table's columns.

    Rows are buffered up to *chunk_rows*, encoded column-wise into
    temporary per-chunk ``.npy`` files, and stitched into the final
    memory-mapped column files by :meth:`finish` — which also computes
    the exact column statistics recorded in the manifest.
    """

    def __init__(
        self,
        root: str,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
        chunk_rows: int = 100_000,
    ):
        if chunk_rows < 1:
            raise CatalogError("chunk_rows must be positive")
        self.root = root
        self.name = name
        self.columns = list(columns)
        self.primary_key = primary_key
        self.chunk_rows = chunk_rows
        self._dir = os.path.join(root, name)
        self._chunk_dir = os.path.join(self._dir, ".chunks")
        os.makedirs(self._chunk_dir, exist_ok=True)
        self._buffer: List[Row] = []
        self._n_rows = 0
        self._n_chunks = 0
        #: per column: list of (kind_or_None, length, data_path, valid_path)
        self._chunks: List[List[Tuple[Optional[str], int, str, Optional[str]]]] = [
            [] for _ in self.columns
        ]
        self._finished: Optional[Dict[str, Any]] = None

    def append(self, row: Row) -> None:
        self._buffer.append(tuple(row))
        if len(self._buffer) >= self.chunk_rows:
            self._flush()

    def extend(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.append(row)

    def _flush(self) -> None:
        if not self._buffer:
            return
        width = len(self.columns)
        for row in self._buffer:
            if len(row) != width:
                raise CatalogError(
                    f"row arity {len(row)} does not match {self.name!r} "
                    f"schema width {width}"
                )
        cols = list(zip(*self._buffer))
        idx = self._n_chunks
        self._n_chunks += 1
        self._n_rows += len(self._buffer)
        for i, col in enumerate(self.columns):
            vec = Vector.from_values(list(cols[i]))
            if vec.kind == KIND_OBJ:
                raise CatalogError(
                    f"column {self.name}.{col.name} holds values with no "
                    f"fixed-width storage kind (would be 'obj'); stores "
                    f"support {STORABLE_KINDS}"
                )
            data_path = os.path.join(self._chunk_dir, f"{col.name}.{idx}.npy")
            np.save(data_path, vec.data, allow_pickle=False)
            valid_path = None
            if not vec.valid.all():
                valid_path = os.path.join(
                    self._chunk_dir, f"{col.name}.{idx}.valid.npy"
                )
                np.save(valid_path, vec.valid, allow_pickle=False)
            kind = vec.kind if vec.valid.any() else None
            self._chunks[i].append((kind, len(vec.data), data_path, valid_path))
        self._buffer = []

    def finish(self) -> Dict[str, Any]:
        """Write the final column files; returns the manifest entry."""
        if self._finished is not None:
            return self._finished
        self._flush()
        n = self._n_rows
        entries = []
        for i, col in enumerate(self.columns):
            entries.append(self._finish_column(col, self._chunks[i], n))
        try:
            os.rmdir(self._chunk_dir)
        except OSError:  # pragma: no cover - leftover foreign files
            pass
        self._finished = {
            "row_count": n,
            "primary_key": self.primary_key,
            "columns": entries,
        }
        return self._finished

    def _finish_column(
        self,
        col: Column,
        chunks: List[Tuple[Optional[str], int, str, Optional[str]]],
        n: int,
    ) -> Dict[str, Any]:
        kind = _resolve_kind({k for k, _n, _d, _v in chunks if k is not None})
        if kind == KIND_STR:
            width = 1
            for _k, _n2, data_path, _v in chunks:
                arr = np.load(data_path, allow_pickle=False, mmap_mode="r")
                if arr.dtype.kind == "U":
                    width = max(width, arr.dtype.itemsize // 4)
            dtype = np.dtype(f"U{width}")
        else:
            dtype = _DTYPES[kind]
        rel_file = os.path.join(self.name, f"{col.name}.npy")
        final_path = os.path.join(self.root, rel_file)
        mm = np.lib.format.open_memmap(
            final_path, mode="w+", dtype=dtype, shape=(n,)
        )
        valid = np.ones(n, dtype=bool)
        offset = 0
        for _kind, length, data_path, valid_path in chunks:
            arr = np.load(data_path, allow_pickle=False)
            mm[offset : offset + length] = arr.astype(dtype, copy=False)
            if valid_path is not None:
                valid[offset : offset + length] = np.load(
                    valid_path, allow_pickle=False
                )
            offset += length
            os.remove(data_path)
            if valid_path is not None:
                os.remove(valid_path)
        mm.flush()
        stats = _exact_stats(kind, mm, valid)
        del mm
        rel_valid = None
        if not valid.all():
            rel_valid = os.path.join(self.name, f"{col.name}.valid.npy")
            np.save(
                os.path.join(self.root, rel_valid),
                np.packbits(valid),
                allow_pickle=False,
            )
        return {
            "name": col.name,
            "kind": kind,
            "not_null": bool(col.not_null),
            "file": rel_file,
            "valid_file": rel_valid,
            "stats": stats,
        }


def _exact_stats(kind: str, data: np.ndarray, valid: np.ndarray) -> Dict[str, Any]:
    """Exact NDV / null fraction / min / max of one finished column."""
    n = len(data)
    n_valid = int(valid.sum())
    null_frac = 0.0 if n == 0 else 1.0 - n_valid / n
    if n_valid == 0:
        return {"ndv": 0.0, "null_frac": null_frac, "min": None, "max": None}
    live = np.asarray(data)[valid] if n_valid < n else np.asarray(data)
    uniq = np.unique(live)
    lo, hi = uniq[0].item(), uniq[-1].item()
    if kind == KIND_FLOAT:
        lo, hi = float(lo), float(hi)
    return {
        "ndv": float(len(uniq)),
        "null_frac": null_frac,
        "min": lo,
        "max": hi,
    }


class StoreWriter:
    """Writes one whole column store directory plus its manifest."""

    def __init__(
        self,
        root: str,
        scale_factor: Optional[float] = None,
        seed: Optional[int] = None,
        chunk_rows: int = 100_000,
    ):
        self.root = root
        self.scale_factor = scale_factor
        self.seed = seed
        self.chunk_rows = chunk_rows
        self._tables: "Dict[str, TableWriter]" = {}
        os.makedirs(root, exist_ok=True)

    def table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
    ) -> TableWriter:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already written")
        writer = TableWriter(
            self.root, name, columns, primary_key=primary_key,
            chunk_rows=self.chunk_rows,
        )
        self._tables[name] = writer
        return writer

    def finalize(self) -> Dict[str, Any]:
        """Finish every table and write ``manifest.json``."""
        tables = {name: w.finish() for name, w in self._tables.items()}
        digest = hashlib.sha1(
            json.dumps(tables, sort_keys=True).encode()
        ).hexdigest()[:16]
        manifest = {
            "format_version": FORMAT_VERSION,
            "scale_factor": self.scale_factor,
            "seed": self.seed,
            "digest": digest,
            "tables": tables,
        }
        with open(os.path.join(self.root, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        return manifest


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #


class StoredRelation(Relation):
    """A relation whose columns are memory-mapped store files.

    The columnar image (:meth:`stored_batch`) is the primary
    representation — slicing it (morsels, partitions) yields zero-copy
    views straight into the mapped files.  The inherited row-level API
    keeps working through the lazy ``rows`` shim below, so row/baseline
    strategies and the external-oracle adapters need no changes; they
    just pay a one-time materialization on first row access.
    """

    __slots__ = ("_vectors", "_row_count", "_fingerprint", "_rows_cache",
                 "_batch_cache", "stored_stats")

    def __init__(
        self,
        schema: Schema,
        vectors: Sequence[Vector],
        row_count: int,
        fingerprint: Tuple,
        stored_stats: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        # deliberately NOT calling Relation.__init__: it would materialize
        # a row list; the stored form keeps columns mapped instead.
        self.schema = schema
        self._vectors = list(vectors)
        self._row_count = int(row_count)
        self._fingerprint = fingerprint
        self._rows_cache: Optional[List[Row]] = None
        self._batch_cache = None
        #: exact per-column statistics from the manifest (bare column
        #: name -> {"ndv", "null_frac", "min", "max"}); read by
        #: :mod:`repro.core.stats` to bypass sampling entirely.
        self.stored_stats = stored_stats or {}

    # -- the row-iterator shim ----------------------------------------- #

    @property
    def rows(self) -> List[Row]:  # type: ignore[override]
        """Python row tuples, materialized lazily on first access."""
        if self._rows_cache is None:
            if not self._vectors:
                self._rows_cache = [() for _ in range(self._row_count)]
            else:
                cols = [v.tolist_sql() for v in self._vectors]
                self._rows_cache = list(zip(*cols))
        return self._rows_cache

    # -- O(1) overrides that must not touch rows ----------------------- #

    def __len__(self) -> int:
        return self._row_count

    def __repr__(self) -> str:
        return f"StoredRelation({self.schema!r}, {self._row_count} rows, mmap)"

    def column_values(self, ref: str):
        return self._vectors[self.schema.index_of(ref)].tolist_sql()

    def fingerprint(self) -> Tuple:
        """Stable O(1) identity: the store digest, not row hashes."""
        return self._fingerprint

    # -- columnar access ------------------------------------------------ #

    def stored_batch(self):
        """The zero-copy mmap :class:`~repro.engine.vector.batch.Batch`."""
        if self._batch_cache is None:
            from .vector.batch import Batch

            self._batch_cache = Batch(
                self.schema, self._vectors, self._row_count
            )
        return self._batch_cache


def _load_vector(root: str, entry: Dict[str, Any], n: int) -> Vector:
    data = np.load(
        os.path.join(root, entry["file"]), mmap_mode="r", allow_pickle=False
    )
    if len(data) != n:
        raise CatalogError(
            f"column file {entry['file']!r} holds {len(data)} rows, "
            f"manifest says {n}"
        )
    if entry.get("valid_file"):
        packed = np.load(
            os.path.join(root, entry["valid_file"]), allow_pickle=False
        )
        valid = np.unpackbits(packed)[:n].astype(bool)
    else:
        valid = np.ones(n, dtype=bool)
    return Vector(entry["kind"], data, valid)


def open_store(root: str) -> Dict[str, Any]:
    """Read and sanity-check a store's ``manifest.json``."""
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise CatalogError(f"no column store at {root!r} (missing manifest)")
    with open(path) as fh:
        manifest = json.load(fh)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CatalogError(
            f"unsupported store format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return manifest


def stored_relation(
    root: str, name: str, entry: Dict[str, Any], digest: str
) -> StoredRelation:
    """Open one table of a store as a :class:`StoredRelation`."""
    n = int(entry["row_count"])
    columns = [
        Column(c["name"], table=name, not_null=bool(c["not_null"]))
        for c in entry["columns"]
    ]
    vectors = [_load_vector(root, c, n) for c in entry["columns"]]
    stats = {c["name"]: dict(c["stats"]) for c in entry["columns"]}
    return StoredRelation(
        Schema(columns),
        vectors,
        n,
        fingerprint=("colstore", name, n, digest),
        stored_stats=stats,
    )


def load_stored_database(root: str, build_indexes: bool = False) -> Database:
    """Attach every table of the store at *root* to a fresh Database.

    Indexes are off by default: building a hash index walks the Python
    rows, which would defeat the point of the mapped columns.  Pass
    ``build_indexes=True`` to get the paper's index set anyway (row
    strategies then probe them as usual).
    """
    manifest = open_store(root)
    digest = manifest.get("digest", "")
    db = Database()
    for name, entry in manifest["tables"].items():
        db.attach_table(
            name,
            stored_relation(root, name, entry, digest),
            primary_key=entry.get("primary_key"),
        )
    if build_indexes:
        from ..tpch.datagen import build_paper_indexes

        build_paper_indexes(db)
    return db


def store_size_bytes(root: str) -> int:
    """Total on-disk size of a store directory (manifest included)."""
    total = 0
    for dirpath, _dirs, files in os.walk(root):
        for f in files:
            total += os.path.getsize(os.path.join(dirpath, f))
    return total
