"""External differential oracle: cross-check strategies against real engines.

The internal fuzz oracle compares our strategies against each other; a
shared misunderstanding of SQL semantics would pass it silently.  This
package grounds every strategy in an *independent* implementation: it
loads the same :class:`~repro.engine.catalog.Database` into a real
engine (stdlib SQLite always; DuckDB when installed), runs the same SQL
— re-rendered in the engine's dialect, with a 3VL-preserving rewrite of
the quantified predicates SQLite lacks — and diffs the result bags
under canonical NULL handling.

Entry points:

* :func:`cross_check` / :func:`verify_or_raise` — the library API
  (``PreparedQuery.verify`` wraps them);
* ``repro diff`` — one-off cross-checks from the CLI;
* ``repro fuzz --oracle=sqlite|duckdb|internal`` — the fuzz runner's
  external mode (divergences ddmin-shrink into the corpus);
* :func:`external_baseline` — plan-shape/wall-time capture as a BENCH
  artifact (``scripts/bench_oracle.py``);
* the known-divergence registry (:mod:`repro.oracle.known`) — expected
  engine disagreements, documented and asserted-as-expected.
"""

from __future__ import annotations

from .adapter import (
    ADAPTER_FACTORIES,
    EngineAdapter,
    InternalAdapter,
    adapter_names,
    engine_available,
    make_adapter,
)
from .bench import external_baseline, paper_query_suite, write_oracle_artifact
from .dialect import (
    DUCKDB,
    SQLITE,
    Dialect,
    comparable,
    dialect_for,
    render_float,
    render_for,
)
from .diff import (
    OracleComparison,
    RowDiff,
    canonical_row,
    canonical_value,
    compare_relation,
    diff_bags,
)
from .known import (
    KnownDivergence,
    clear_registered,
    find_known,
    known_divergences,
    register_known_divergence,
    registry_report,
    sql_digest,
)
from .verify import cross_check, verify_or_raise

__all__ = [
    "ADAPTER_FACTORIES",
    "DUCKDB",
    "SQLITE",
    "Dialect",
    "EngineAdapter",
    "InternalAdapter",
    "KnownDivergence",
    "OracleComparison",
    "RowDiff",
    "adapter_names",
    "canonical_row",
    "canonical_value",
    "clear_registered",
    "comparable",
    "compare_relation",
    "cross_check",
    "dialect_for",
    "diff_bags",
    "engine_available",
    "external_baseline",
    "find_known",
    "known_divergences",
    "make_adapter",
    "paper_query_suite",
    "register_known_divergence",
    "registry_report",
    "render_float",
    "render_for",
    "sql_digest",
    "verify_or_raise",
    "write_oracle_artifact",
]
