"""AST -> external-engine SQL rendering.

The internal unparser (:mod:`repro.sql.unparse`) targets our own parser;
this module targets *real* engines.  The differences that matter:

* **identifier quoting** — every table/column identifier is emitted
  inside double quotes (doubling embedded quotes), so names that collide
  with the target engine's keyword set cannot change the parse;
* **quantified predicates** — SQLite has no ``θ SOME/ANY/ALL`` and other
  engines disagree on the corners, so both quantifiers are rewritten
  into a three-valued ``CASE``-over-``EXISTS`` form that reproduces SQL
  semantics exactly (TRUE / FALSE / UNKNOWN as ``1`` / ``0`` / ``NULL``,
  which compose correctly under the engine's own Kleene AND/OR/NOT):

  - ``x θ SOME (SELECT e FROM ... WHERE w)`` becomes TRUE when a
    *w*-row with a TRUE comparison exists, else UNKNOWN when one with an
    UNKNOWN comparison exists, else FALSE (vacuously FALSE on empty);
  - ``x θ ALL`` symmetrically: FALSE dominates, then UNKNOWN, else TRUE
    (vacuously TRUE on empty);

* **division** — our engine (and DuckDB) use true division for ``/``;
  SQLite truncates integer/integer, so the SQLite dialect multiplies the
  left operand by ``1.0`` first.  Both agree that division by zero
  yields NULL.

``IN (subquery)``, ``NOT IN``, ``EXISTS``, ``BETWEEN``, ``IS NULL`` and
the Kleene connectives follow the SQL standard in every engine we adapt,
so they render natively.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from ..engine.types import is_null
from ..errors import OracleUnsupportedError
from ..sql import ast as A


@dataclass(frozen=True)
class Dialect:
    """Rendering knobs for one engine family."""

    name: str
    #: ``/`` truncates on integer operands (SQLite) and needs the
    #: ``* 1.0`` promotion to match our true-division semantics.
    integer_division: bool = False

    def quote_ident(self, name: str) -> str:
        return '"' + name.replace('"', '""') + '"'


SQLITE = Dialect(name="sqlite", integer_division=True)
DUCKDB = Dialect(name="duckdb", integer_division=False)

_DIALECTS = {"sqlite": SQLITE, "duckdb": DUCKDB}


def dialect_for(engine: str) -> Dialect:
    try:
        return _DIALECTS[engine]
    except KeyError:
        raise OracleUnsupportedError(
            f"no SQL dialect registered for engine {engine!r}"
        ) from None


def render_for(stmt: A.SelectStmt, dialect: Dialect) -> str:
    """Render *stmt* as SQL text for *dialect*'s engine."""
    return _Renderer(dialect).select(stmt)


def comparable(stmt: A.SelectStmt) -> None:
    """Raise :class:`OracleUnsupportedError` if *stmt*'s results are not
    engine-independent.

    ``LIMIT`` without an ``ORDER BY`` that totally orders the output is
    the one construct in our subset whose *correct* results differ
    between engines (any N rows satisfy it), so a bag diff over it would
    report false divergences.
    """
    if stmt.limit is not None:
        raise OracleUnsupportedError(
            "LIMIT queries select an implementation-defined subset of "
            "rows unless ORDER BY totally orders the output; the oracle "
            "cannot diff them faithfully"
        )


class _Renderer:
    def __init__(self, dialect: Dialect):
        self.d = dialect

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def select(self, stmt: A.SelectStmt) -> str:
        parts = ["select"]
        if stmt.distinct:
            parts.append("distinct")
        parts.append(", ".join(self._item(item) for item in stmt.items))
        parts.append("from")
        parts.append(", ".join(self._table(t) for t in stmt.tables))
        if stmt.where is not None:
            parts.append("where")
            parts.append(self.predicate(stmt.where))
        if stmt.group_by:
            parts.append("group by")
            parts.append(", ".join(self._colref(r) for r in stmt.group_by))
        if stmt.having is not None:
            parts.append("having")
            parts.append(self.predicate(stmt.having))
        if stmt.order_by:
            parts.append("order by")
            parts.append(
                ", ".join(
                    self._colref(item.expr) + (" desc" if item.descending else "")
                    for item in stmt.order_by
                )
            )
        if stmt.limit is not None:
            parts.append(f"limit {stmt.limit}")
        return " ".join(parts)

    def _item(self, item: A.SelectItem) -> str:
        if item.star:
            return "*"
        assert item.expr is not None
        if isinstance(item.expr, A.AggregateCall):
            return self._agg_call(item.expr)
        return self._colref(item.expr)

    def _agg_call(self, call: A.AggregateCall) -> str:
        if call.star:
            return f"{call.func}(*)"
        assert call.arg is not None
        return f"{call.func}({self._colref(call.arg)})"

    def _table(self, tref: A.TableRef) -> str:
        name = self.d.quote_ident(tref.name)
        if tref.alias:
            return f"{name} {self.d.quote_ident(tref.alias)}"
        return name

    # ------------------------------------------------------------------ #
    # value expressions
    # ------------------------------------------------------------------ #

    def _colref(self, ref: A.ColumnRef) -> str:
        col = self.d.quote_ident(ref.column)
        if ref.table:
            return f"{self.d.quote_ident(ref.table)}.{col}"
        return col

    def value(self, expr: A.ValueExpr) -> str:
        if isinstance(expr, A.ColumnRef):
            return self._colref(expr)
        if isinstance(expr, A.Constant):
            return self.constant(expr.value)
        if isinstance(expr, A.BinaryArith):
            left = self.value(expr.left)
            right = self.value(expr.right)
            if expr.op == "/" and self.d.integer_division:
                # promote to REAL so int/int matches our true division
                return f"(({left}) * 1.0 / ({right}))"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, A.AggregateCall):
            return self._agg_call(expr)
        if isinstance(expr, A.ScalarSubquery):
            # real engines evaluate scalar subqueries natively (empty
            # result -> NULL), matching our aggregate-link semantics
            return f"({self.select(expr.subquery)})"
        raise OracleUnsupportedError(
            f"cannot render value expression {expr!r} for {self.d.name}"
        )

    def constant(self, value: object) -> str:
        if is_null(value):
            return "null"
        if value is True:
            return "1"
        if value is False:
            return "0"
        if isinstance(value, float):
            return render_float(value)
        if isinstance(value, int):
            return repr(value)
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        if isinstance(value, datetime.date):
            return f"'{value.isoformat()}'"
        raise OracleUnsupportedError(
            f"cannot render constant {value!r} for {self.d.name}"
        )

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    def predicate(self, pred: A.Predicate, parent: str = "or") -> str:
        if isinstance(pred, A.OrPred):
            text = (
                f"{self.predicate(pred.left, 'or')} or "
                f"{self.predicate(pred.right, 'or')}"
            )
            return f"({text})" if parent in ("and", "not") else text
        if isinstance(pred, A.AndPred):
            text = (
                f"{self.predicate(pred.left, 'and')} and "
                f"{self.predicate(pred.right, 'and')}"
            )
            return f"({text})" if parent == "not" else text
        if isinstance(pred, A.NotPred):
            return f"not {self.predicate(pred.operand, 'not')}"
        if isinstance(pred, A.ComparisonPred):
            return f"{self.value(pred.left)} {pred.op} {self.value(pred.right)}"
        if isinstance(pred, A.BetweenPred):
            return (
                f"{self.value(pred.operand)} between "
                f"{self.value(pred.low)} and {self.value(pred.high)}"
            )
        if isinstance(pred, A.IsNullPred):
            negation = "is not null" if pred.negated else "is null"
            return f"{self.value(pred.operand)} {negation}"
        if isinstance(pred, A.InListPred):
            items = ", ".join(self.value(v) for v in pred.items)
            keyword = "not in" if pred.negated else "in"
            return f"{self.value(pred.operand)} {keyword} ({items})"
        if isinstance(pred, A.ExistsPred):
            keyword = "not exists" if pred.negated else "exists"
            return f"{keyword} ({self.select(pred.subquery)})"
        if isinstance(pred, A.InSubqueryPred):
            keyword = "not in" if pred.negated else "in"
            return f"{self.value(pred.operand)} {keyword} ({self.select(pred.subquery)})"
        if isinstance(pred, A.QuantifiedPred):
            return self._quantified(pred)
        raise OracleUnsupportedError(
            f"cannot render predicate {pred!r} for {self.d.name}"
        )

    def _quantified(self, pred: A.QuantifiedPred) -> str:
        """The 3VL-preserving CASE/EXISTS rewrite of ``x θ SOME|ALL``."""
        sub = pred.subquery
        if len(sub.items) != 1 or sub.items[0].star or sub.items[0].expr is None:
            raise OracleUnsupportedError(
                "quantified subquery must have exactly one select item"
            )
        if sub.order_by or sub.limit is not None:
            raise OracleUnsupportedError(
                "ORDER BY/LIMIT inside a quantified subquery cannot be "
                "preserved through the EXISTS rewrite"
            )
        operand = self.value(pred.operand)
        item = sub.items[0].expr
        if sub.group_by or sub.having is not None:
            # grouped subquery: probe the aggregated result as a derived
            # table (inlining WHERE would bypass the HAVING filter)
            if isinstance(item, A.AggregateCall):
                raise OracleUnsupportedError(
                    "quantified grouped subquery must select a group key"
                )
            inner = self.select(sub)
            element = f'"_q".{self.d.quote_ident(item.column)}'
            compare = f"({operand} {pred.op} {element})"

            def probe(condition: str) -> str:
                return f'exists (select 1 from ({inner}) "_q" where {condition})'

        else:
            element = self._colref(item)
            tables = ", ".join(self._table(t) for t in sub.tables)
            local = (
                f"({self.predicate(sub.where, 'and')}) and "
                if sub.where is not None
                else ""
            )
            compare = f"({operand} {pred.op} {element})"

            def probe(condition: str) -> str:
                return (
                    f"exists (select 1 from {tables} where {local}{condition})"
                )

        # TRUE/FALSE keywords keep the CASE boolean-typed for strict
        # engines (DuckDB); SQLite reads them as 1/0.
        if pred.quantifier == "some":
            return (
                f"(case when {probe(compare)} then true "
                f"when {probe(compare + ' is null')} then null "
                f"else false end)"
            )
        if pred.quantifier == "all":
            return (
                f"(case when {probe('not ' + compare)} then false "
                f"when {probe(compare + ' is null')} then null "
                f"else true end)"
            )
        raise OracleUnsupportedError(
            f"unknown quantifier {pred.quantifier!r}"
        )


def render_float(value: float) -> str:
    """A float literal every SQL parser (ours included) accepts.

    Delegates to :func:`repro.sql.unparse.render_float_literal` — small
    exponent forms expand into positional decimal; infinities and NaNs
    are rejected — re-raised here as :class:`OracleUnsupportedError`.
    """
    from ..errors import ReproError
    from ..sql.unparse import render_float_literal

    try:
        return render_float_literal(value)
    except ReproError as exc:
        raise OracleUnsupportedError(str(exc)) from None
