"""The stdlib ``sqlite3`` adapter — the always-available external engine.

Tables are created with *no* declared column types so SQLite's column
affinity never coerces a value: parameterized inserts store exactly the
Python objects our engine holds (ints as INTEGER, floats as REAL,
strings as TEXT, dates as ISO-8601 TEXT, NULL as NULL).  Catalog hash
and sorted indexes are mirrored as SQLite indexes so ``EXPLAIN QUERY
PLAN`` shows comparable access-path choices.
"""

from __future__ import annotations

import datetime
import sqlite3
from typing import List

from ..engine.catalog import Database
from ..engine.types import is_null
from ..errors import OracleError
from .adapter import EngineAdapter
from .dialect import SQLITE


def _storable(value: object) -> object:
    if is_null(value):
        return None
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


class SqliteAdapter(EngineAdapter):
    name = "sqlite"
    dialect = SQLITE

    def __init__(self) -> None:
        self.connection = sqlite3.connect(":memory:")

    @property
    def engine_version(self) -> str:
        return sqlite3.sqlite_version

    def load(self, db: Database) -> None:
        cur = self.connection.cursor()
        for name, table in db.tables.items():
            quoted = self.dialect.quote_ident(name)
            cur.execute(f"DROP TABLE IF EXISTS {quoted}")
            columns = ", ".join(
                self.dialect.quote_ident(c.name) for c in table.schema.columns
            )
            cur.execute(f"CREATE TABLE {quoted} ({columns})")
            if table.relation.rows:
                placeholders = ", ".join("?" * len(table.schema))
                cur.executemany(
                    f"INSERT INTO {quoted} VALUES ({placeholders})",
                    [
                        tuple(_storable(v) for v in row)
                        for row in table.relation.rows
                    ],
                )
            for i, refs in enumerate(table.hash_indexes):
                self._index(cur, name, i, [r.split(".")[-1] for r in refs])
            for j, ref in enumerate(table.sorted_indexes):
                self._index(
                    cur, name, 1000 + j, [ref.split(".")[-1]]
                )
        self.connection.commit()

    def _index(self, cur, table: str, n: int, columns: List[str]) -> None:
        index_name = self.dialect.quote_ident(f"idx_{table}_{n}")
        cols = ", ".join(self.dialect.quote_ident(c) for c in columns)
        quoted = self.dialect.quote_ident(table)
        cur.execute(
            f"CREATE INDEX IF NOT EXISTS {index_name} ON {quoted} ({cols})"
        )

    def execute_sql(self, sql: str) -> List[tuple]:
        try:
            return self.connection.execute(sql).fetchall()
        except sqlite3.Error as exc:
            raise OracleError(f"sqlite rejected the query: {exc}") from exc

    def explain(self, sql: str) -> str:
        """``EXPLAIN QUERY PLAN`` output as indented text."""
        try:
            rows = self.connection.execute(
                f"EXPLAIN QUERY PLAN {sql}"
            ).fetchall()
        except sqlite3.Error as exc:
            raise OracleError(f"sqlite could not plan the query: {exc}") from exc
        # rows are (id, parent, notused, detail); indent by parent chain
        depth = {0: 0}
        lines = []
        for node_id, parent, _unused, detail in rows:
            level = depth.get(parent, 0) + 1
            depth[node_id] = level
            lines.append("  " * (level - 1) + detail)
        return "\n".join(lines)

    def close(self) -> None:
        self.connection.close()
