"""Bag comparison of our results against an external engine's.

Both sides are normalized into *canonical rows* before diffing:

* NULL markers unify — our :data:`~repro.engine.types.NULL` singleton
  and the DB-API's ``None`` map to the same key;
* numerics unify — SQLite has no boolean storage class (booleans come
  back as integers) and ``1``/``1.0`` compare equal in SQL, so bools,
  ints and floats share one numeric key (exact IEEE value, so ``0.1``
  survives the round-trip unchanged);
* dates unify with their ISO-8601 text (SQLite stores our date values
  as TEXT).

The diff is over *bags*: duplicates count, order does not — exactly the
equality the internal differential oracle already uses.
"""

from __future__ import annotations

import datetime
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..engine.relation import Relation
from ..engine.types import is_null


def canonical_value(value: object):
    """A hashable, engine-neutral comparison key for one SQL value."""
    if value is None or is_null(value):
        return ("null",)
    if isinstance(value, bool):
        return ("num", float(value))
    if isinstance(value, (int, float)):
        return ("num", float(value)) if float(value) == value else ("num", value)
    if isinstance(value, datetime.date):
        return ("str", value.isoformat())
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, bytes):
        return ("bytes", value)
    return ("repr", repr(value))


def canonical_row(row: Sequence[object]) -> Tuple:
    return tuple(canonical_value(v) for v in row)


def display_row(row: Sequence[object]) -> Tuple:
    """The row with ``None`` shown as ``NULL`` (for reports)."""
    from ..engine.types import NULL

    return tuple(NULL if v is None or is_null(v) else v for v in row)


@dataclass(frozen=True)
class RowDiff:
    """The first difference between two row bags, plus aggregate counts."""

    #: a representative differing row (display form)
    first_diff: Tuple
    #: multiplicity of that row on each side
    ours_multiplicity: int
    theirs_multiplicity: int
    #: total rows present in theirs but missing/short in ours, and vice versa
    missing: int
    extra: int

    def describe(self) -> str:
        return (
            f"first differing row {self.first_diff!r}: "
            f"ours x{self.ours_multiplicity}, "
            f"external x{self.theirs_multiplicity} "
            f"({self.missing} row(s) missing from ours, "
            f"{self.extra} extra)"
        )


def diff_bags(
    ours: Sequence[Sequence[object]], theirs: Sequence[Sequence[object]]
) -> Optional[RowDiff]:
    """Compare two row bags; ``None`` when they agree."""
    ours_counter: Counter = Counter()
    ours_display = {}
    for row in ours:
        key = canonical_row(row)
        ours_counter[key] += 1
        ours_display.setdefault(key, display_row(row))
    theirs_counter: Counter = Counter()
    theirs_display = {}
    for row in theirs:
        key = canonical_row(row)
        theirs_counter[key] += 1
        theirs_display.setdefault(key, display_row(row))
    if ours_counter == theirs_counter:
        return None
    missing = sum(
        max(0, n - ours_counter.get(key, 0))
        for key, n in theirs_counter.items()
    )
    extra = sum(
        max(0, n - theirs_counter.get(key, 0))
        for key, n in ours_counter.items()
    )
    differing = sorted(
        key
        for key in set(ours_counter) | set(theirs_counter)
        if ours_counter.get(key, 0) != theirs_counter.get(key, 0)
    )
    first = differing[0]
    return RowDiff(
        first_diff=ours_display.get(first, theirs_display.get(first)),
        ours_multiplicity=ours_counter.get(first, 0),
        theirs_multiplicity=theirs_counter.get(first, 0),
        missing=missing,
        extra=extra,
    )


@dataclass
class OracleComparison:
    """One cross-engine check: our strategy's rows vs an external engine's.

    ``ok`` means the bags agree; a disagreement may still be *expected*
    when it matches the known-divergence registry (``known`` is then the
    matching :class:`~repro.oracle.known.KnownDivergence` and the check
    counts as passed-with-caveat rather than failed).
    """

    engine: str
    sql: str
    dialect_sql: str
    strategy: str
    ours_rows: int
    theirs_rows: int
    diff: Optional[RowDiff] = None
    known: Optional[object] = None  # KnownDivergence
    elapsed_ours: float = 0.0
    elapsed_theirs: float = 0.0
    plan_ours: Optional[str] = None
    plan_theirs: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.diff is None

    @property
    def acceptable(self) -> bool:
        """Agreement, or a divergence the registry documents as expected."""
        return self.ok or self.known is not None

    def describe(self) -> str:
        lines = [
            f"strategy {self.strategy!r} vs {self.engine}: "
            + ("agree" if self.ok else "DIVERGE"),
            f"  rows: ours={self.ours_rows} {self.engine}={self.theirs_rows}",
            f"  sql:  {self.sql.strip()}",
        ]
        if self.dialect_sql.strip() != self.sql.strip():
            lines.append(f"  {self.engine} sql: {self.dialect_sql.strip()}")
        if self.diff is not None:
            lines.append(f"  {self.diff.describe()}")
        if self.known is not None:
            lines.append(
                f"  known divergence {self.known.key!r}: {self.known.reason}"
            )
        return "\n".join(lines)


def compare_relation(
    relation: Relation, external_rows: List[tuple]
) -> Optional[RowDiff]:
    """Diff an engine :class:`Relation` against DB-API result rows."""
    return diff_bags(relation.rows, external_rows)
