"""External baseline capture: plan shape + wall time as a BENCH artifact.

The paper's figures compare our strategies against each other; this
module adds the ROADMAP's "external yardstick": the same six queries
(Figures 4-9) run on a real engine over the same TPC-H data, recording
the engine's plan text (``EXPLAIN QUERY PLAN`` on SQLite, ``EXPLAIN
ANALYZE`` on DuckDB), its wall time, our chosen strategy's wall time,
and whether the row bags agree.  ``scripts/bench_oracle.py`` writes the
result as ``BENCH_oracle_<engine>.json`` in CI.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..tpch.queries import (
    pick_availqty,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)
from .adapter import make_adapter
from .verify import cross_check

ARTIFACT_SCHEMA_VERSION = 1


def paper_query_suite(db: Database, target_rows: int = 32) -> List[Tuple[str, str]]:
    """The six paper queries (Figures 4-9) with selection constants
    derived from *db* so every block is non-trivially sized."""
    lo, hi = pick_date_window(db, target_rows)
    size_lo, size_hi = pick_size_window(db, target_rows)
    availqty = pick_availqty(db, target_rows * 2)
    quantities = db.relation("lineitem").column_values("l_quantity")
    quantity = quantities[0] if quantities else 1
    return [
        ("fig4_q1", query1(lo, hi)),
        ("fig5_q2a", query2("any", size_lo, size_hi, availqty, quantity)),
        ("fig6_q2b", query2("all", size_lo, size_hi, availqty, quantity)),
        (
            "fig7_q3a",
            query3("all", "exists", "a", size_lo, size_hi, availqty, quantity),
        ),
        (
            "fig8_q3b",
            query3("all", "not exists", "b", size_lo, size_hi, availqty, quantity),
        ),
        (
            "fig9_q3c",
            query3("any", "exists", "c", size_lo, size_hi, availqty, quantity),
        ),
    ]


def external_baseline(
    db: Database,
    engine: str = "sqlite",
    strategy: str = "auto",
    sf: Optional[float] = None,
    target_rows: int = 32,
) -> Dict:
    """Run the paper suite on *engine* and on *strategy*; the artifact dict."""
    adapter = make_adapter(engine, db)
    queries = []
    try:
        for name, sql in paper_query_suite(db, target_rows=target_rows):
            reports = cross_check(
                db,
                sql,
                engine=engine,
                strategies=(strategy,),
                adapter=adapter,
                capture_plans=True,
            )
            report = reports[0]
            queries.append(
                {
                    "name": name,
                    "sql": " ".join(sql.split()),
                    "dialect_sql": report.dialect_sql,
                    "agree": report.acceptable,
                    "rows": report.ours_rows,
                    "engine_rows": report.theirs_rows,
                    "repro_strategy": report.strategy,
                    "repro_seconds": report.elapsed_ours,
                    "engine_seconds": report.elapsed_theirs,
                    "engine_plan": report.plan_theirs,
                    "known_divergence": (
                        report.known.key if report.known else None
                    ),
                }
            )
        version = getattr(adapter, "engine_version", "?")
    finally:
        adapter.close()
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": "oracle-baseline",
        "engine": engine,
        "engine_version": version,
        "strategy": strategy,
        "scale_factor": sf,
        "generated_unix": time.time(),
        "queries": queries,
    }


def write_oracle_artifact(artifact: Dict, out_dir: str) -> str:
    """Write ``BENCH_oracle_<engine>.json`` under *out_dir*; the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_oracle_{artifact['engine']}.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    return path
