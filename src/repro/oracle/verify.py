"""Cross-checking our strategies against an external engine.

:func:`cross_check` is the library workhorse: load the database into the
engine once, run the dialect SQL once, then diff every requested
strategy's result against the external rows.  ``repro diff``, the
corpus replay test, the NULL-matrix test and ``PreparedQuery.verify``
are all thin wrappers over it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..engine.catalog import Database
from ..errors import OracleDivergenceError
from ..sql.parser import parse
from .adapter import EngineAdapter, make_adapter
from .diff import OracleComparison, diff_bags
from .dialect import comparable
from .known import find_known


def cross_check(
    db: Database,
    sql: str,
    engine: str = "sqlite",
    strategies: Sequence[str] = ("auto",),
    backend: Optional[str] = None,
    threads: Optional[int] = None,
    adapter: Optional[EngineAdapter] = None,
    capture_plans: bool = False,
) -> List[OracleComparison]:
    """Run *sql* on every strategy and on *engine*; one report each.

    The external engine executes exactly once; its row bag is shared
    across the per-strategy diffs.  A mismatch that the known-divergence
    registry explains is recorded on the report (``known``) instead of
    failing it.  Pass an already-loaded *adapter* to reuse a connection.
    """
    import repro

    stmt = parse(sql)
    comparable(stmt)
    own = adapter is None
    if adapter is None:
        adapter = make_adapter(engine, db)
    try:
        external_rows, dialect_sql, elapsed_theirs = adapter.execute(stmt)
        plan_theirs = adapter.explain(dialect_sql) if capture_plans else None
        session = repro.connect(db)
        prepared = session.prepare(sql)
        reports: List[OracleComparison] = []
        for strategy in strategies:
            start = time.perf_counter()
            result = prepared.execute(
                strategy=strategy, backend=backend, threads=threads
            )
            elapsed_ours = time.perf_counter() - start
            diff = diff_bags(result.rows, external_rows)
            known = (
                find_known(sql, adapter.name, stmt)
                if diff is not None
                else None
            )
            reports.append(
                OracleComparison(
                    engine=adapter.name,
                    sql=sql,
                    dialect_sql=dialect_sql,
                    strategy=_label(strategy, backend, threads),
                    ours_rows=len(result),
                    theirs_rows=len(external_rows),
                    diff=diff,
                    known=known,
                    elapsed_ours=elapsed_ours,
                    elapsed_theirs=elapsed_theirs,
                    plan_ours=None,
                    plan_theirs=plan_theirs,
                )
            )
        return reports
    finally:
        if own:
            adapter.close()


def _label(strategy, backend, threads) -> str:
    label = strategy if isinstance(strategy, str) else type(strategy).__name__
    if backend:
        label += f"@{backend}"
    if threads:
        label += f"x{threads}"
    return label


def verify_or_raise(reports: Sequence[OracleComparison]) -> List[OracleComparison]:
    """Raise :class:`OracleDivergenceError` on the first *unexpected*
    divergence; return the reports otherwise."""
    for report in reports:
        if not report.acceptable:
            raise OracleDivergenceError(
                f"strategy {report.strategy!r} diverges from "
                f"{report.engine}: {report.diff.describe()}",
                comparison=report,
            )
    return list(reports)
