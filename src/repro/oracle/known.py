"""The known-divergence registry.

Real engines legitimately disagree with a textbook 3VL evaluator in a
few corners (Libkin's 2VL survey and Ricciotti & Cheney's SQL
formalization catalogue them; see PAPERS.md).  When the external oracle
hits one of these, the divergence is *expected*: it must not flake CI,
but it must stay visible — each registry entry carries a written
explanation and the check report records which entry matched.

An entry matches either

* **structurally** — a predicate over the parsed statement and engine
  name (e.g. "LIMIT without a total ORDER BY", where any row subset is a
  correct answer and engines pick different ones), or
* **by case digest** — a specific fuzz case catalogued after
  investigation (``sql_digest`` from
  :func:`repro.fuzz.corpus.case_digest`-style hashing of the SQL text).

``repro fuzz --oracle=...``, the corpus replay test and
``PreparedQuery.verify`` all consult the same registry, so an entry
added once silences the case everywhere while keeping it in the
research catalogue (:func:`registry_report`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..sql import ast as A
from ..sql.parser import parse


def sql_digest(sql: str) -> str:
    """A stable short hash of normalized SQL text."""
    normalized = " ".join(sql.split()).lower()
    return hashlib.sha1(normalized.encode()).hexdigest()[:10]


@dataclass(frozen=True)
class KnownDivergence:
    """One documented, expected disagreement with an external engine."""

    key: str
    #: engines the divergence applies to; ``("*",)`` = all engines
    engines: Tuple[str, ...]
    #: the written explanation — *why* both answers are defensible
    reason: str
    #: structural matcher over (stmt, engine); None = digest-only entry
    matches: Optional[Callable[[A.SelectStmt, str], bool]] = None
    #: exact-case matcher by normalized SQL hash; None = structural-only
    sql_digest: Optional[str] = None

    def applies(self, stmt: Optional[A.SelectStmt], sql: str, engine: str) -> bool:
        if "*" not in self.engines and engine not in self.engines:
            return False
        if self.sql_digest is not None:
            return sql_digest(sql) == self.sql_digest
        if self.matches is not None and stmt is not None:
            return self.matches(stmt, engine)
        return False


def _limit_without_total_order(stmt: A.SelectStmt, engine: str) -> bool:
    """LIMIT is only deterministic when ORDER BY covers the output.

    Any engine may return any qualifying subset of rows; diffing two
    engines' choices is meaningless, so such statements are registered
    rather than reported.  (:func:`repro.oracle.dialect.comparable`
    refuses them up front; this entry documents the *why* and catches
    statements that arrive through other paths.)
    """
    if stmt.limit is None:
        return False
    ordered = {item.expr.text for item in stmt.order_by}
    output = {
        item.expr.text for item in stmt.items if item.expr is not None
    }
    return not stmt.order_by or not output or not output <= ordered


_BUILTIN: List[KnownDivergence] = [
    KnownDivergence(
        key="limit-without-total-order",
        engines=("*",),
        reason=(
            "LIMIT n without an ORDER BY that totally orders the output "
            "permits any n qualifying rows; every engine's answer is "
            "correct and they need not match"
        ),
        matches=_limit_without_total_order,
    ),
]

_REGISTERED: List[KnownDivergence] = []


def register_known_divergence(entry: KnownDivergence) -> KnownDivergence:
    """Add a registry entry (idempotent on ``key``)."""
    if any(e.key == entry.key for e in known_divergences()):
        return entry
    _REGISTERED.append(entry)
    return entry


def clear_registered() -> None:
    """Drop non-builtin entries (test isolation)."""
    _REGISTERED.clear()


def known_divergences() -> List[KnownDivergence]:
    return list(_BUILTIN) + list(_REGISTERED)


def find_known(
    sql: str, engine: str, stmt: Optional[A.SelectStmt] = None
) -> Optional[KnownDivergence]:
    """The first registry entry matching this (sql, engine), if any."""
    if stmt is None:
        try:
            stmt = parse(sql)
        except Exception:
            stmt = None
    for entry in known_divergences():
        if entry.applies(stmt, sql, engine):
            return entry
    return None


def registry_report() -> str:
    """Human-readable catalogue of every registered divergence."""
    lines = ["known-divergence registry:"]
    for entry in known_divergences():
        scope = ",".join(entry.engines)
        kind = (
            f"digest={entry.sql_digest}"
            if entry.sql_digest is not None
            else "structural"
        )
        lines.append(f"  [{entry.key}] engines={scope} ({kind})")
        lines.append(f"      {entry.reason}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
