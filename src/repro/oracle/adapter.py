"""The engine-adapter protocol and its registry.

An adapter owns one external engine connection: it loads a
:class:`~repro.engine.catalog.Database` into the engine, executes
dialect-rendered SQL, and exposes the engine's plan text.  Adapters are
cheap to build and single-use-friendly — the fuzzer builds a fresh one
per case; ``PreparedQuery.verify`` keeps one per call.

Registering a new engine means subclassing :class:`EngineAdapter`,
adding a :class:`~repro.oracle.dialect.Dialect` if the engine needs
non-default rendering, and listing the constructor in
:data:`ADAPTER_FACTORIES` (see DESIGN.md §12 for the walkthrough).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..errors import OracleError, OracleUnavailableError
from ..sql import ast as A
from ..sql.parser import parse
from .dialect import Dialect, render_for


class EngineAdapter:
    """Base class for external (and internal) engine adapters."""

    #: registry name, e.g. ``"sqlite"``
    name: str = "?"
    #: the dialect the adapter renders SQL in
    dialect: Optional[Dialect] = None

    def load(self, db: Database) -> None:
        """(Re)create every table of *db* inside the engine."""
        raise NotImplementedError

    def execute_sql(self, sql: str) -> List[tuple]:
        """Run already-rendered dialect SQL; DB-API rows (None = NULL)."""
        raise NotImplementedError

    def explain(self, sql: str) -> str:
        """The engine's plan text for dialect SQL (best effort)."""
        return ""

    def close(self) -> None:
        pass

    # ------------------------------------------------------------------ #
    # conveniences shared by every adapter
    # ------------------------------------------------------------------ #

    def render(self, stmt: A.SelectStmt) -> str:
        assert self.dialect is not None
        return render_for(stmt, self.dialect)

    def execute(self, stmt: A.SelectStmt) -> Tuple[List[tuple], str, float]:
        """Render and run *stmt*; ``(rows, dialect_sql, seconds)``."""
        sql = self.render(stmt)
        start = time.perf_counter()
        rows = self.execute_sql(sql)
        return rows, sql, time.perf_counter() - start

    def execute_text(self, sql: str) -> Tuple[List[tuple], str, float]:
        """Parse our SQL text, then :meth:`execute` it."""
        return self.execute(parse(sql))

    def __enter__(self) -> "EngineAdapter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InternalAdapter(EngineAdapter):
    """The tuple-iteration evaluator behind the adapter protocol.

    ``repro diff --engine internal`` and ``repro fuzz --oracle=internal``
    go through this, so the external and internal oracles share one code
    path (and one report format).
    """

    name = "internal"

    def __init__(self) -> None:
        self._db: Optional[Database] = None

    def load(self, db: Database) -> None:
        self._db = db

    def render(self, stmt: A.SelectStmt) -> str:
        from ..sql.unparse import render_sql

        return render_sql(stmt)

    def execute_sql(self, sql: str) -> List[tuple]:
        from ..core.planner import run
        from ..sql.analyzer import compile_sql

        if self._db is None:
            raise OracleError("internal adapter: load() a database first")
        query = compile_sql(sql, self._db)
        return list(run(query, self._db, strategy="nested-iteration").rows)

    def explain(self, sql: str) -> str:
        from ..sql.analyzer import compile_sql
        from ..core.explain import explain as explain_plan

        if self._db is None:
            raise OracleError("internal adapter: load() a database first")
        return explain_plan(
            compile_sql(sql, self._db), self._db, strategy="nested-iteration"
        )


def _make_sqlite() -> EngineAdapter:
    from .sqlite_adapter import SqliteAdapter

    return SqliteAdapter()


def _make_duckdb() -> EngineAdapter:
    from .duckdb_adapter import DuckDbAdapter

    return DuckDbAdapter()


#: engine name -> adapter constructor (may raise OracleUnavailableError)
ADAPTER_FACTORIES: Dict[str, Callable[[], EngineAdapter]] = {
    "sqlite": _make_sqlite,
    "duckdb": _make_duckdb,
    "internal": InternalAdapter,
}


def adapter_names() -> List[str]:
    """Every registered adapter name (available or not)."""
    return sorted(ADAPTER_FACTORIES)


def make_adapter(engine: str, db: Optional[Database] = None) -> EngineAdapter:
    """Build an adapter by name, optionally loading *db* into it.

    Raises :class:`OracleUnavailableError` for unknown names and for
    engines whose package is not installed (DuckDB).
    """
    factory = ADAPTER_FACTORIES.get(engine)
    if factory is None:
        raise OracleUnavailableError(
            f"unknown oracle engine {engine!r}; "
            f"registered: {', '.join(adapter_names())}"
        )
    adapter = factory()
    if db is not None:
        adapter.load(db)
    return adapter


def engine_available(engine: str) -> bool:
    """Whether :func:`make_adapter` would succeed for *engine*."""
    try:
        make_adapter(engine).close()
        return True
    except OracleUnavailableError:
        return False
