"""The optional DuckDB adapter.

DuckDB is not a baked-in dependency; importing this module raises
:class:`~repro.errors.OracleUnavailableError` when the package is
absent, and every caller (CLI, fuzzer, tests) treats that as
"auto-skip".  Unlike SQLite, DuckDB needs declared column types, so the
loader infers one per column from the values present (NULL-only columns
default to INTEGER, which never affects comparisons because every cell
is NULL).
"""

from __future__ import annotations

import datetime
from typing import List

from ..engine.catalog import Database
from ..engine.types import is_null
from ..errors import OracleError, OracleUnavailableError
from .adapter import EngineAdapter
from .dialect import DUCKDB

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None


def _column_type(values: List[object]) -> str:
    kinds = {type(v) for v in values if not is_null(v)}
    if not kinds:
        return "INTEGER"
    if kinds <= {bool}:
        return "BOOLEAN"
    if kinds <= {int, bool}:
        return "BIGINT"
    if kinds <= {int, float, bool}:
        return "DOUBLE"
    if kinds <= {str}:
        return "VARCHAR"
    if kinds <= {datetime.date}:
        return "DATE"
    raise OracleError(
        f"cannot infer a DuckDB column type for value types "
        f"{sorted(k.__name__ for k in kinds)}"
    )


class DuckDbAdapter(EngineAdapter):
    name = "duckdb"
    dialect = DUCKDB

    def __init__(self) -> None:
        if _duckdb is None:
            raise OracleUnavailableError(
                "duckdb is not installed; pip install duckdb to enable "
                "the DuckDB oracle"
            )
        self.connection = _duckdb.connect(":memory:")

    @property
    def engine_version(self) -> str:
        return getattr(_duckdb, "__version__", "?")

    def load(self, db: Database) -> None:
        for name, table in db.tables.items():
            quoted = self.dialect.quote_ident(name)
            self.connection.execute(f"DROP TABLE IF EXISTS {quoted}")
            decls = []
            for i, column in enumerate(table.schema.columns):
                values = [row[i] for row in table.relation.rows]
                decls.append(
                    f"{self.dialect.quote_ident(column.name)} "
                    f"{_column_type(values)}"
                )
            self.connection.execute(
                f"CREATE TABLE {quoted} ({', '.join(decls)})"
            )
            if table.relation.rows:
                placeholders = ", ".join("?" * len(table.schema))
                self.connection.executemany(
                    f"INSERT INTO {quoted} VALUES ({placeholders})",
                    [
                        tuple(None if is_null(v) else v for v in row)
                        for row in table.relation.rows
                    ],
                )

    def execute_sql(self, sql: str) -> List[tuple]:
        try:
            return self.connection.execute(sql).fetchall()
        except Exception as exc:  # duckdb raises its own hierarchy
            raise OracleError(f"duckdb rejected the query: {exc}") from exc

    def explain(self, sql: str) -> str:
        """``EXPLAIN ANALYZE`` text (plan shape plus operator timings)."""
        try:
            rows = self.connection.execute(f"EXPLAIN ANALYZE {sql}").fetchall()
        except Exception as exc:
            raise OracleError(f"duckdb could not plan the query: {exc}") from exc
        return "\n".join(str(part) for row in rows for part in row[1:])

    def close(self) -> None:
        self.connection.close()
