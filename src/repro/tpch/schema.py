"""TPC-H table schemas (the subset of columns the engine stores).

Full eight-table TPC-H layout.  Two columns get configurable NOT NULL
constraints because the paper's experiments hinge on them:

* ``l_extendedprice`` — Query 1: "with a NOT NULL constraint on the
  attribute l_extendedprice, System A directly performs an antijoin ...
  if the NOT NULL constraint is dropped, even though there are no null
  values, antijoin is not used";
* ``ps_supplycost`` — Query 2b: same story.

:func:`columns_for` returns :class:`~repro.engine.schema.Column` lists
with the desired constraint setting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engine.schema import Column

#: column name -> always-NOT-NULL flag; None marks the two configurable ones
_TABLES: Dict[str, List[Tuple[str, object]]] = {
    "region": [
        ("r_regionkey", True),
        ("r_name", True),
        ("r_comment", False),
    ],
    "nation": [
        ("n_nationkey", True),
        ("n_name", True),
        ("n_regionkey", True),
        ("n_comment", False),
    ],
    "supplier": [
        ("s_suppkey", True),
        ("s_name", True),
        ("s_address", False),
        ("s_nationkey", True),
        ("s_phone", False),
        ("s_acctbal", False),
        ("s_comment", False),
    ],
    "customer": [
        ("c_custkey", True),
        ("c_name", True),
        ("c_address", False),
        ("c_nationkey", True),
        ("c_phone", False),
        ("c_acctbal", False),
        ("c_mktsegment", False),
        ("c_comment", False),
    ],
    "part": [
        ("p_partkey", True),
        ("p_name", True),
        ("p_mfgr", False),
        ("p_brand", False),
        ("p_type", False),
        ("p_size", True),
        ("p_container", False),
        ("p_retailprice", True),
        ("p_comment", False),
    ],
    "partsupp": [
        ("ps_partkey", True),
        ("ps_suppkey", True),
        ("ps_availqty", True),
        ("ps_supplycost", None),  # configurable (paper Query 2b)
        ("ps_comment", False),
    ],
    "orders": [
        ("o_orderkey", True),
        ("o_custkey", True),
        ("o_orderstatus", False),
        ("o_totalprice", True),
        ("o_orderdate", True),
        ("o_orderpriority", True),
        ("o_clerk", False),
        ("o_shippriority", False),
        ("o_comment", False),
    ],
    "lineitem": [
        ("l_orderkey", True),
        ("l_partkey", True),
        ("l_suppkey", True),
        ("l_linenumber", True),
        ("l_quantity", True),
        ("l_extendedprice", None),  # configurable (paper Query 1)
        ("l_discount", False),
        ("l_tax", False),
        ("l_returnflag", False),
        ("l_linestatus", False),
        ("l_shipdate", True),
        ("l_commitdate", True),
        ("l_receiptdate", True),
        ("l_shipmode", False),
        ("l_comment", False),
    ],
}

PRIMARY_KEYS: Dict[str, str] = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "orders": "o_orderkey",
    # partsupp and lineitem have composite keys in TPC-H; the generator
    # adds a synthetic single-column key for each (ps_key, l_key) so every
    # table satisfies the paper's unique-non-null-key assumption.
    "partsupp": "ps_key",
    "lineitem": "l_key",
}

TABLE_NAMES = tuple(_TABLES)


def columns_for(table: str, price_not_null: bool = False) -> List[Column]:
    """Columns of *table*; configurable ones get *price_not_null*."""
    columns = []
    for name, flag in _TABLES[table]:
        not_null = price_not_null if flag is None else bool(flag)
        columns.append(Column(name, not_null=not_null))
    if table == "partsupp":
        columns.insert(0, Column("ps_key", not_null=True))
    if table == "lineitem":
        columns.insert(0, Column("l_key", not_null=True))
    return columns
