"""TPC-H data validation: referential integrity and distribution checks.

The benchmark harness's conclusions are only as good as the generated
data, so :func:`validate` audits a database the way a dbgen acceptance
test would: primary-key uniqueness and non-nullness, foreign keys
resolving, value domains (p_size ∈ 1..50, l_quantity ∈ 1..50,
ps_availqty ∈ 1..9999), date ordering along each lineitem
(ship < receipt), and the configured NULL-injection rate staying inside
its tolerance.  Returns a list of human-readable violations (empty =
valid); :func:`assert_valid` raises on the first problem.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..engine.types import is_null
from .schema import PRIMARY_KEYS


def _column(db: Database, table: str, ref: str) -> list:
    return db.relation(table).column_values(ref)


def _check_pk(db: Database, table: str, issues: List[str]) -> None:
    pk = PRIMARY_KEYS.get(table)
    if pk is None or not db.has_table(table):
        return
    values = _column(db, table, pk)
    nulls = sum(1 for v in values if is_null(v))
    if nulls:
        issues.append(f"{table}.{pk}: {nulls} NULL key(s)")
    non_null = [v for v in values if not is_null(v)]
    if len(set(non_null)) != len(non_null):
        issues.append(f"{table}.{pk}: duplicate keys")


def _check_fk(
    db: Database,
    child: Tuple[str, str],
    parent: Tuple[str, str],
    issues: List[str],
) -> None:
    child_table, child_col = child
    parent_table, parent_col = parent
    if not (db.has_table(child_table) and db.has_table(parent_table)):
        return
    parent_keys = {
        v for v in _column(db, parent_table, parent_col) if not is_null(v)
    }
    dangling = sum(
        1
        for v in _column(db, child_table, child_col)
        if not is_null(v) and v not in parent_keys
    )
    if dangling:
        issues.append(
            f"{child_table}.{child_col}: {dangling} value(s) not in "
            f"{parent_table}.{parent_col}"
        )


def _check_domain(
    db: Database, table: str, ref: str, lo: int, hi: int, issues: List[str]
) -> None:
    if not db.has_table(table):
        return
    bad = sum(
        1
        for v in _column(db, table, ref)
        if not is_null(v) and not (lo <= v <= hi)
    )
    if bad:
        issues.append(f"{table}.{ref}: {bad} value(s) outside [{lo}, {hi}]")


def validate(
    db: Database, expected_null_fraction: Optional[float] = None
) -> List[str]:
    """Audit *db*; return a list of violations (empty when valid)."""
    issues: List[str] = []
    for table in PRIMARY_KEYS:
        _check_pk(db, table, issues)

    _check_fk(db, ("nation", "n_regionkey"), ("region", "r_regionkey"), issues)
    _check_fk(db, ("supplier", "s_nationkey"), ("nation", "n_nationkey"), issues)
    _check_fk(db, ("customer", "c_nationkey"), ("nation", "n_nationkey"), issues)
    _check_fk(db, ("partsupp", "ps_partkey"), ("part", "p_partkey"), issues)
    _check_fk(db, ("partsupp", "ps_suppkey"), ("supplier", "s_suppkey"), issues)
    _check_fk(db, ("orders", "o_custkey"), ("customer", "c_custkey"), issues)
    _check_fk(db, ("lineitem", "l_orderkey"), ("orders", "o_orderkey"), issues)
    _check_fk(db, ("lineitem", "l_partkey"), ("part", "p_partkey"), issues)
    _check_fk(db, ("lineitem", "l_suppkey"), ("supplier", "s_suppkey"), issues)

    _check_domain(db, "part", "p_size", 1, 50, issues)
    _check_domain(db, "lineitem", "l_quantity", 1, 50, issues)
    _check_domain(db, "partsupp", "ps_availqty", 1, 9999, issues)

    if db.has_table("lineitem"):
        rel = db.relation("lineitem")
        ship_pos = rel.schema.index_of("l_shipdate")
        receipt_pos = rel.schema.index_of("l_receiptdate")
        bad_dates = sum(
            1 for row in rel.rows if not row[ship_pos] < row[receipt_pos]
        )
        if bad_dates:
            issues.append(f"lineitem: {bad_dates} row(s) with ship >= receipt")

    if expected_null_fraction is not None and db.has_table("lineitem"):
        values = _column(db, "lineitem", "l_extendedprice")
        if values:
            actual = sum(1 for v in values if is_null(v)) / len(values)
            if abs(actual - expected_null_fraction) > max(
                0.05, expected_null_fraction * 0.5
            ):
                issues.append(
                    "lineitem.l_extendedprice NULL fraction "
                    f"{actual:.3f} far from configured "
                    f"{expected_null_fraction:.3f}"
                )
    return issues


def assert_valid(
    db: Database, expected_null_fraction: Optional[float] = None
) -> None:
    """Raise ``AssertionError`` listing every violation found."""
    issues = validate(db, expected_null_fraction)
    if issues:
        raise AssertionError("TPC-H validation failed:\n  " + "\n  ".join(issues))
