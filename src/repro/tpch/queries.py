"""The paper's benchmark queries (Section 5.2), as SQL text builders.

Each builder returns SQL for :func:`repro.sql.compile_sql`.  The
selection constants (X1/X2, Y, Z) regulate the size of each query block
exactly as in the paper; :func:`pick_date_window` / :func:`pick_size_window`
derive constants that hit a target outer-block size on a given database.

Query 1 — one-level, ``> ALL``, correlated::

    select o_orderkey, o_orderpriority from orders
    where o_orderdate >= X1 and o_orderdate < X2
      and o_totalprice > all (select l_extendedprice from lineitem
                              where l_orderkey = o_orderkey
                                and l_commitdate < l_receiptdate
                                and l_shipdate < l_commitdate)

Query 2 — two-level linear, ``< ANY|ALL`` + ``NOT EXISTS``; Query 3 —
the same with the third block correlated to *both* enclosing blocks
(``ps_partkey=l_partkey`` becomes ``p_partkey [=|<>] l_partkey``) and an
``EXISTS | NOT EXISTS`` choice, in the three correlated-predicate
variants (a), (b), (c) of Section 5.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..errors import InvalidArgumentError

#: correlated-predicate variants of Query 3 (paper's (a), (b), (c))
QUERY3_VARIANTS: Dict[str, Tuple[str, str]] = {
    "a": ("=", "="),
    "b": ("<>", "="),
    "c": ("=", "<>"),
}


def query1(date_from: str, date_to: str) -> str:
    """Paper Query 1 (Figure 4)."""
    return f"""
    select o_orderkey, o_orderpriority
    from orders
    where o_orderdate >= '{date_from}' and o_orderdate < '{date_to}'
      and o_totalprice > all
        (select l_extendedprice from lineitem
         where l_orderkey = o_orderkey
           and l_commitdate < l_receiptdate
           and l_shipdate < l_commitdate)
    """


def query2(
    quantifier: str,
    size_lo: int,
    size_hi: int,
    availqty_below: int,
    quantity_eq: int,
) -> str:
    """Paper Query 2 (Figures 5 and 6); *quantifier* is 'any' or 'all'."""
    if quantifier not in ("any", "all"):
        raise InvalidArgumentError("quantifier must be 'any' or 'all'")
    return f"""
    select p_partkey, p_name
    from part
    where p_size >= {size_lo} and p_size <= {size_hi}
      and p_retailprice < {quantifier}
        (select ps_supplycost from partsupp
         where ps_partkey = p_partkey and ps_availqty < {availqty_below}
           and not exists
             (select * from lineitem
              where ps_partkey = l_partkey and ps_suppkey = l_suppkey
                and l_quantity = {quantity_eq}))
    """


def query3(
    quantifier: str,
    existential: str,
    variant: str,
    size_lo: int,
    size_hi: int,
    availqty_below: int,
    quantity_eq: int,
) -> str:
    """Paper Query 3 (Figures 7, 8, 9).

    *quantifier* ∈ {'any', 'all'}, *existential* ∈ {'exists',
    'not exists'}, *variant* ∈ {'a', 'b', 'c'} selecting the correlated
    predicate pair of Section 5.2.
    """
    if quantifier not in ("any", "all"):
        raise InvalidArgumentError("quantifier must be 'any' or 'all'")
    if existential not in ("exists", "not exists"):
        raise InvalidArgumentError("existential must be 'exists' or 'not exists'")
    if variant not in QUERY3_VARIANTS:
        raise InvalidArgumentError(f"variant must be one of {sorted(QUERY3_VARIANTS)}")
    part_op, supp_op = QUERY3_VARIANTS[variant]
    return f"""
    select p_partkey, p_name
    from part
    where p_size >= {size_lo} and p_size <= {size_hi}
      and p_retailprice < {quantifier}
        (select ps_supplycost from partsupp
         where ps_partkey = p_partkey and ps_availqty < {availqty_below}
           and {existential}
             (select * from lineitem
              where p_partkey {part_op} l_partkey
                and ps_suppkey {supp_op} l_suppkey
                and l_quantity = {quantity_eq}))
    """


#: (figure, label) -> builder kwargs, for the harness's experiment index
PAPER_QUERIES = {
    "query1": ("Figure 4", "one-level ALL"),
    "query2a": ("Figure 5", "mixed ANY / NOT EXISTS, linear"),
    "query2b": ("Figure 6", "negative ALL / NOT EXISTS, linear"),
    "query3a": ("Figure 7", "mixed ALL / EXISTS, tree-correlated"),
    "query3b": ("Figure 8", "negative ALL / NOT EXISTS, tree-correlated"),
    "query3c": ("Figure 9", "positive ANY / EXISTS, tree-correlated"),
}


# --------------------------------------------------------------------- #
# Selection-constant pickers: hit a target block size on actual data.
# --------------------------------------------------------------------- #


def pick_date_window(db: Database, target_rows: int) -> Tuple[str, str]:
    """An o_orderdate window [X1, X2) selecting ≈ *target_rows* orders."""
    dates = sorted(db.relation("orders").column_values("o_orderdate"))
    if not dates:
        raise InvalidArgumentError("orders is empty")
    target = min(max(target_rows, 1), len(dates))
    start_index = 0
    lo = dates[start_index]
    end_index = min(start_index + target, len(dates) - 1)
    hi = dates[end_index]
    if hi == lo:
        hi = lo + "~"  # lexicographically just past lo
    return lo, hi


def pick_size_window(db: Database, target_rows: int) -> Tuple[int, int]:
    """A p_size range [lo, hi] selecting ≈ *target_rows* parts."""
    sizes = sorted(db.relation("part").column_values("p_size"))
    if not sizes:
        raise InvalidArgumentError("part is empty")
    total = len(sizes)
    target = min(max(target_rows, 1), total)
    # p_size is uniform on 1..50: pick the number of distinct size values
    # whose cumulative count first reaches the target.
    from collections import Counter

    counts = Counter(sizes)
    lo = 1
    acc = 0
    hi = 1
    for size in sorted(counts):
        acc += counts[size]
        hi = size
        if acc >= target:
            break
    return lo, hi


def pick_availqty(db: Database, target_rows: int) -> int:
    """An availqty cutoff Y selecting ≈ *target_rows* partsupp tuples."""
    values = sorted(db.relation("partsupp").column_values("ps_availqty"))
    if not values:
        raise InvalidArgumentError("partsupp is empty")
    target = min(max(target_rows, 1), len(values))
    return values[target - 1] + 1


def count_quantity_block(db: Database, quantity_eq: int) -> int:
    """Size of the lineitem block for a given Z (l_quantity = Z)."""
    return sum(
        1 for v in db.relation("lineitem").column_values("l_quantity") if v == quantity_eq
    )
