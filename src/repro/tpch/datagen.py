"""Deterministic synthetic TPC-H data generator.

A scaled-down stand-in for dbgen: row counts follow the official TPC-H
cardinalities times the scale factor (orders = 1 500 000 × SF, lineitem ≈
4 × orders, part = 200 000 × SF, partsupp = 4 × part, ...), values follow
the spec's distributions closely enough for the paper's workloads
(uniform ``p_size`` in 1..50, ``ps_availqty`` in 1..9999, ``l_quantity``
in 1..50, order dates uniform over 1992-01-01 .. 1998-08-02).  Everything
derives from a seeded :class:`random.Random`, so a given (sf, seed) pair
always produces the same database — benchmark series are reproducible.

``inject_null_fraction`` optionally replaces that fraction of
``l_extendedprice`` / ``ps_supplycost`` values with NULL: the paper's
soundness arguments are about *potentially* NULL columns, and the
correctness test-suite uses actually-NULL data to catch unsound rewrites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..engine.types import NULL
from .schema import PRIMARY_KEYS, columns_for

#: official TPC-H cardinalities at scale factor 1
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_CONTAINERS = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"]
_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
_TYPES = ["ECONOMY", "STANDARD", "PROMO", "SMALL", "MEDIUM", "LARGE"]
_DATE_START = 8035  # ordinal days offset base for 1992-01-01 (arbitrary epoch)
_DATE_SPAN = 2405   # days between 1992-01-01 and 1998-08-02


def _date(day_offset: int) -> str:
    """ISO date string for 1992-01-01 + day_offset (lexicographic order
    equals chronological order, so strings compare correctly)."""
    import datetime

    return (datetime.date(1992, 1, 1) + datetime.timedelta(days=day_offset)).isoformat()


@dataclass
class TpchConfig:
    """Knobs for :func:`generate`."""

    scale_factor: float = 0.001
    seed: int = 42
    #: declare NOT NULL on l_extendedprice / ps_supplycost (Query 1/2b hinge)
    price_not_null: bool = False
    #: fraction of the two price columns replaced by NULL (0 = spec data)
    inject_null_fraction: float = 0.0
    #: create the indexes the paper's experiments assume
    build_indexes: bool = True


def rows_at(sf: float, table: str) -> int:
    """Scaled row count for *table* (min 1; nation/region never scale)."""
    if table in ("region", "nation"):
        return BASE_ROWS[table]
    return max(1, int(BASE_ROWS[table] * sf))


# --------------------------------------------------------------------- #
# shared row generators
#
# Both the in-memory builder (:func:`generate`) and the streaming
# column-store writer (:func:`generate_stored`) draw from these, in the
# same table order, off ONE seeded rng — so a given (sf, seed) pair
# yields bit-identical rows regardless of the destination.  Any change
# to the rng call sequence here is a format break for stored datasets.
# --------------------------------------------------------------------- #


def _make_maybe_null(rng: random.Random, fraction: float):
    def maybe_null(value):
        if fraction > 0 and rng.random() < fraction:
            return NULL
        return value

    return maybe_null


def _region_rows(n_region: int):
    for k in range(n_region):
        yield (k, _REGIONS[k % len(_REGIONS)], f"region {k}")


def _nation_rows(n_nation: int, n_region: int):
    for k in range(n_nation):
        yield (k, f"NATION#{k:02d}", k % n_region, f"nation {k}")


def _supplier_rows(rng: random.Random, n_supplier: int, n_nation: int):
    for k in range(1, n_supplier + 1):
        yield (
            k,
            f"Supplier#{k:09d}",
            f"addr {k}",
            rng.randrange(n_nation),
            f"{rng.randrange(10,35)}-555-{k:07d}",
            round(rng.uniform(-999.99, 9999.99), 2),
            f"supplier comment {k}",
        )


def _customer_rows(rng: random.Random, n_customer: int, n_nation: int):
    for k in range(1, n_customer + 1):
        yield (
            k,
            f"Customer#{k:09d}",
            f"addr {k}",
            rng.randrange(n_nation),
            f"{rng.randrange(10,35)}-555-{k:07d}",
            round(rng.uniform(-999.99, 9999.99), 2),
            _SEGMENTS[rng.randrange(len(_SEGMENTS))],
            f"customer comment {k}",
        )


def _part_rows(rng: random.Random, n_part: int):
    for k in range(1, n_part + 1):
        yield (
            k,
            f"part {k}",
            f"Manufacturer#{k % 5 + 1}",
            f"Brand#{k % 25 + 1}",
            _TYPES[rng.randrange(len(_TYPES))],
            rng.randint(1, 50),
            _CONTAINERS[rng.randrange(len(_CONTAINERS))],
            round(900 + (k % 1000) + rng.uniform(0, 100), 2),
            f"part comment {k}",
        )


def _partsupp_rows(rng: random.Random, n_part: int, n_supplier: int, maybe_null):
    ps_key = 0
    for pk in range(1, n_part + 1):
        for j in range(4):
            ps_key += 1
            yield (
                ps_key,
                pk,
                1 + (pk * 4 + j) % n_supplier,
                rng.randint(1, 9999),
                # TPC-H spec uses uniform [1, 1000]; we widen to 2000 so
                # the paper's "p_retailprice < ANY/ALL ps_supplycost"
                # predicates have non-trivial selectivity at small scale
                # factors (retail prices sit in 900..2000).
                maybe_null(round(rng.uniform(1.0, 2000.0), 2)),
                f"partsupp comment {ps_key}",
            )


def _order_lineitem_rows(
    rng: random.Random,
    n_orders: int,
    n_part: int,
    n_customer: int,
    n_supplier: int,
    maybe_null,
):
    """Yield ``("lineitem", row)`` / ``("orders", row)`` interleaved.

    Lines are generated before their order (o_totalprice sums them), so
    a streaming consumer sees each order's lineitems first; within each
    table rows arrive in key order.
    """
    l_key = 0
    for ok in range(1, n_orders + 1):
        order_date = rng.randrange(_DATE_SPAN - 151)
        n_lines = rng.randint(1, 7)
        total = 0.0
        for ln in range(1, n_lines + 1):
            l_key += 1
            partkey = rng.randint(1, n_part)
            suppkey = 1 + (partkey * 4 + rng.randrange(4)) % n_supplier
            quantity = rng.randint(1, 50)
            extended = round(quantity * rng.uniform(900.0, 1100.0) / 10, 2)
            total += extended
            ship = order_date + rng.randint(1, 121)
            commit = order_date + rng.randint(30, 90)
            receipt = ship + rng.randint(1, 30)
            yield (
                "lineitem",
                (
                    l_key,
                    ok,
                    partkey,
                    suppkey,
                    ln,
                    quantity,
                    maybe_null(extended),
                    round(rng.uniform(0.0, 0.1), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    "R" if rng.random() < 0.25 else "N",
                    "O" if rng.random() < 0.5 else "F",
                    _date(ship),
                    _date(commit),
                    _date(receipt),
                    _MODES[rng.randrange(len(_MODES))],
                    f"line comment {l_key}",
                ),
            )
        yield (
            "orders",
            (
                ok,
                rng.randint(1, n_customer),
                "F" if rng.random() < 0.5 else "O",
                round(total, 2),
                _date(order_date),
                _PRIORITIES[rng.randrange(len(_PRIORITIES))],
                f"Clerk#{rng.randrange(1000):09d}",
                0,
                f"order comment {ok}",
            ),
        )


def generate(config: Optional[TpchConfig] = None, **kwargs) -> Database:
    """Build a TPC-H database per *config* (kwargs override fields)."""
    if config is None:
        config = TpchConfig()
    for key, value in kwargs.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown TpchConfig field {key!r}")
        setattr(config, key, value)

    rng = random.Random(config.seed)
    db = Database()
    sf = config.scale_factor

    n_region = rows_at(sf, "region")
    n_nation = rows_at(sf, "nation")
    n_supplier = rows_at(sf, "supplier")
    n_customer = rows_at(sf, "customer")
    n_part = rows_at(sf, "part")
    n_orders = rows_at(sf, "orders")

    # ---------------------------------------------------------------- #
    maybe_null = _make_maybe_null(rng, config.inject_null_fraction)
    db.create_table(
        "region",
        columns_for("region"),
        list(_region_rows(n_region)),
        primary_key="r_regionkey",
    )
    db.create_table(
        "nation",
        columns_for("nation"),
        list(_nation_rows(n_nation, n_region)),
        primary_key="n_nationkey",
    )
    db.create_table(
        "supplier",
        columns_for("supplier"),
        list(_supplier_rows(rng, n_supplier, n_nation)),
        primary_key="s_suppkey",
    )
    db.create_table(
        "customer",
        columns_for("customer"),
        list(_customer_rows(rng, n_customer, n_nation)),
        primary_key="c_custkey",
    )
    db.create_table(
        "part",
        columns_for("part", config.price_not_null),
        list(_part_rows(rng, n_part)),
        primary_key="p_partkey",
    )
    db.create_table(
        "partsupp",
        columns_for("partsupp", config.price_not_null),
        list(_partsupp_rows(rng, n_part, n_supplier, maybe_null)),
        primary_key="ps_key",
    )
    order_rows = []
    lineitem_rows = []
    for table, row in _order_lineitem_rows(
        rng, n_orders, n_part, n_customer, n_supplier, maybe_null
    ):
        (order_rows if table == "orders" else lineitem_rows).append(row)
    db.create_table(
        "orders",
        columns_for("orders"),
        order_rows,
        primary_key="o_orderkey",
    )
    db.create_table(
        "lineitem",
        columns_for("lineitem", config.price_not_null),
        lineitem_rows,
        primary_key="l_key",
    )

    if config.build_indexes:
        build_paper_indexes(db)
    _seed_known_stats(
        db,
        n_customer=n_customer,
        n_part=n_part,
        n_supplier=n_supplier,
        n_orders=n_orders,
        null_fraction=config.inject_null_fraction,
    )
    return db


def _seed_known_stats(
    db: Database,
    n_customer: int,
    n_part: int,
    n_supplier: int,
    n_orders: int,
    null_fraction: float,
) -> None:
    """Seed the generator's *known* distributions as exact statistics.

    The cost-based planner samples tables for NDV/min/max estimates
    (:mod:`repro.core.stats`); the generator knows the true figures —
    ``p_size`` and ``l_quantity`` are uniform on 1..50, foreign keys are
    uniform over their referenced key space, dates span the TPC-H
    window — so it registers them as persistent overrides.  Overrides
    survive catalog version bumps (index builds, NULL injection reruns),
    keeping planner estimates honest at every scale factor.
    """
    from ..core.stats import ColumnStats, set_table_stats

    date_lo, date_hi = _date(0), _date(_DATE_SPAN)
    uniform_50 = ColumnStats(ndv=50.0, min_value=1, max_value=50)
    set_table_stats(
        db,
        "part",
        columns={
            "p_partkey": ColumnStats(ndv=float(n_part), min_value=1, max_value=n_part),
            "p_size": uniform_50,
        },
    )
    set_table_stats(
        db,
        "partsupp",
        columns={
            "ps_partkey": ColumnStats(ndv=float(n_part), min_value=1, max_value=n_part),
            "ps_supplycost": ColumnStats(
                ndv=1000.0, null_frac=null_fraction, min_value=1.0, max_value=2000.0
            ),
        },
    )
    set_table_stats(
        db,
        "orders",
        columns={
            "o_orderkey": ColumnStats(
                ndv=float(n_orders), min_value=1, max_value=n_orders
            ),
            "o_custkey": ColumnStats(
                ndv=float(min(n_customer, n_orders)), min_value=1, max_value=n_customer
            ),
            "o_orderdate": ColumnStats(
                ndv=float(min(n_orders, _DATE_SPAN - 151)),
                min_value=date_lo,
                max_value=date_hi,
            ),
        },
    )
    n_lineitem = len(db.tables["lineitem"].relation.rows)
    set_table_stats(
        db,
        "lineitem",
        columns={
            "l_orderkey": ColumnStats(
                ndv=float(n_orders), min_value=1, max_value=n_orders
            ),
            "l_partkey": ColumnStats(
                ndv=float(min(n_part, n_lineitem)), min_value=1, max_value=n_part
            ),
            "l_suppkey": ColumnStats(
                ndv=float(min(n_supplier, n_lineitem)),
                min_value=1,
                max_value=n_supplier,
            ),
            "l_quantity": uniform_50,
            "l_extendedprice": ColumnStats(
                ndv=float(min(n_lineitem, 10000)), null_frac=null_fraction
            ),
            "l_shipdate": ColumnStats(
                ndv=float(min(n_lineitem, _DATE_SPAN)),
                min_value=date_lo,
                max_value=date_hi,
            ),
        },
    )


def build_paper_indexes(db: Database) -> None:
    """Create the indexes Section 5 describes.

    "B+ tree indexes on the primary key of each base table were
    automatically built"; "Additional indexes on the foreign keys of
    lineitem, l_partkey and l_suppkey, are created manually"; "we created
    a combined index on (l_partkey, l_suppkey) and two single indexes".
    """
    for table, pk in PRIMARY_KEYS.items():
        if db.has_table(table):
            db.create_hash_index(table, [pk])
    db.create_hash_index("lineitem", ["l_orderkey"])
    db.create_hash_index("lineitem", ["l_partkey"])
    db.create_hash_index("lineitem", ["l_suppkey"])
    db.create_hash_index("lineitem", ["l_partkey", "l_suppkey"])
    db.create_hash_index("partsupp", ["ps_partkey"])
    db.create_hash_index("partsupp", ["ps_partkey", "ps_suppkey"])
    db.create_hash_index("orders", ["o_orderkey"])


def generate_stored(
    out_dir: str,
    config: Optional[TpchConfig] = None,
    chunk_rows: int = 100_000,
    **kwargs,
) -> str:
    """Stream a TPC-H dataset straight into an on-disk column store.

    Writes the same rows :func:`generate` would build — one seeded rng,
    same call order — but in ``chunk_rows`` batches through
    :class:`repro.engine.colstore.StoreWriter`, so peak memory stays at
    one chunk per open table instead of the whole database.  The
    resulting directory loads with
    :func:`repro.engine.colstore.load_stored_database`, whose manifest
    carries exact per-column statistics (the stored analogue of the
    in-memory generator's seeded stat overrides).

    Returns *out_dir*.  ``repro gen`` is the CLI face of this function.
    """
    from ..engine.colstore import StoreWriter

    if config is None:
        config = TpchConfig()
    for key, value in kwargs.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown TpchConfig field {key!r}")
        setattr(config, key, value)

    rng = random.Random(config.seed)
    sf = config.scale_factor

    n_region = rows_at(sf, "region")
    n_nation = rows_at(sf, "nation")
    n_supplier = rows_at(sf, "supplier")
    n_customer = rows_at(sf, "customer")
    n_part = rows_at(sf, "part")
    n_orders = rows_at(sf, "orders")

    maybe_null = _make_maybe_null(rng, config.inject_null_fraction)
    store = StoreWriter(
        out_dir, scale_factor=sf, seed=config.seed, chunk_rows=chunk_rows
    )

    def write(name, rows, price_not_null=False):
        writer = store.table(
            name,
            columns_for(name, price_not_null)
            if name in ("part", "partsupp", "lineitem")
            else columns_for(name),
            primary_key=PRIMARY_KEYS[name],
        )
        for row in rows:
            writer.append(row)
        writer.finish()

    write("region", _region_rows(n_region))
    write("nation", _nation_rows(n_nation, n_region))
    write("supplier", _supplier_rows(rng, n_supplier, n_nation))
    write("customer", _customer_rows(rng, n_customer, n_nation))
    write("part", _part_rows(rng, n_part), config.price_not_null)
    write(
        "partsupp",
        _partsupp_rows(rng, n_part, n_supplier, maybe_null),
        config.price_not_null,
    )
    # orders and lineitem interleave on the shared rng: keep both
    # writers open and route each yielded row to its table.
    orders_writer = store.table(
        "orders", columns_for("orders"), primary_key=PRIMARY_KEYS["orders"]
    )
    lineitem_writer = store.table(
        "lineitem",
        columns_for("lineitem", config.price_not_null),
        primary_key=PRIMARY_KEYS["lineitem"],
    )
    for table, row in _order_lineitem_rows(
        rng, n_orders, n_part, n_customer, n_supplier, maybe_null
    ):
        (orders_writer if table == "orders" else lineitem_writer).append(row)
    orders_writer.finish()
    lineitem_writer.finish()
    store.finalize()
    return out_dir
