"""Deterministic synthetic TPC-H data generator.

A scaled-down stand-in for dbgen: row counts follow the official TPC-H
cardinalities times the scale factor (orders = 1 500 000 × SF, lineitem ≈
4 × orders, part = 200 000 × SF, partsupp = 4 × part, ...), values follow
the spec's distributions closely enough for the paper's workloads
(uniform ``p_size`` in 1..50, ``ps_availqty`` in 1..9999, ``l_quantity``
in 1..50, order dates uniform over 1992-01-01 .. 1998-08-02).  Everything
derives from a seeded :class:`random.Random`, so a given (sf, seed) pair
always produces the same database — benchmark series are reproducible.

``inject_null_fraction`` optionally replaces that fraction of
``l_extendedprice`` / ``ps_supplycost`` values with NULL: the paper's
soundness arguments are about *potentially* NULL columns, and the
correctness test-suite uses actually-NULL data to catch unsound rewrites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.catalog import Database
from ..engine.types import NULL
from .schema import PRIMARY_KEYS, columns_for

#: official TPC-H cardinalities at scale factor 1
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_CONTAINERS = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"]
_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
_TYPES = ["ECONOMY", "STANDARD", "PROMO", "SMALL", "MEDIUM", "LARGE"]
_DATE_START = 8035  # ordinal days offset base for 1992-01-01 (arbitrary epoch)
_DATE_SPAN = 2405   # days between 1992-01-01 and 1998-08-02


def _date(day_offset: int) -> str:
    """ISO date string for 1992-01-01 + day_offset (lexicographic order
    equals chronological order, so strings compare correctly)."""
    import datetime

    return (datetime.date(1992, 1, 1) + datetime.timedelta(days=day_offset)).isoformat()


@dataclass
class TpchConfig:
    """Knobs for :func:`generate`."""

    scale_factor: float = 0.001
    seed: int = 42
    #: declare NOT NULL on l_extendedprice / ps_supplycost (Query 1/2b hinge)
    price_not_null: bool = False
    #: fraction of the two price columns replaced by NULL (0 = spec data)
    inject_null_fraction: float = 0.0
    #: create the indexes the paper's experiments assume
    build_indexes: bool = True


def rows_at(sf: float, table: str) -> int:
    """Scaled row count for *table* (min 1; nation/region never scale)."""
    if table in ("region", "nation"):
        return BASE_ROWS[table]
    return max(1, int(BASE_ROWS[table] * sf))


def generate(config: Optional[TpchConfig] = None, **kwargs) -> Database:
    """Build a TPC-H database per *config* (kwargs override fields)."""
    if config is None:
        config = TpchConfig()
    for key, value in kwargs.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown TpchConfig field {key!r}")
        setattr(config, key, value)

    rng = random.Random(config.seed)
    db = Database()
    sf = config.scale_factor

    n_region = rows_at(sf, "region")
    n_nation = rows_at(sf, "nation")
    n_supplier = rows_at(sf, "supplier")
    n_customer = rows_at(sf, "customer")
    n_part = rows_at(sf, "part")
    n_partsupp_per_part = 4
    n_orders = rows_at(sf, "orders")

    # ---------------------------------------------------------------- #
    db.create_table(
        "region",
        columns_for("region"),
        [(k, _REGIONS[k % len(_REGIONS)], f"region {k}") for k in range(n_region)],
        primary_key="r_regionkey",
    )
    db.create_table(
        "nation",
        columns_for("nation"),
        [
            (k, f"NATION#{k:02d}", k % n_region, f"nation {k}")
            for k in range(n_nation)
        ],
        primary_key="n_nationkey",
    )
    db.create_table(
        "supplier",
        columns_for("supplier"),
        [
            (
                k,
                f"Supplier#{k:09d}",
                f"addr {k}",
                rng.randrange(n_nation),
                f"{rng.randrange(10,35)}-555-{k:07d}",
                round(rng.uniform(-999.99, 9999.99), 2),
                f"supplier comment {k}",
            )
            for k in range(1, n_supplier + 1)
        ],
        primary_key="s_suppkey",
    )
    db.create_table(
        "customer",
        columns_for("customer"),
        [
            (
                k,
                f"Customer#{k:09d}",
                f"addr {k}",
                rng.randrange(n_nation),
                f"{rng.randrange(10,35)}-555-{k:07d}",
                round(rng.uniform(-999.99, 9999.99), 2),
                _SEGMENTS[rng.randrange(len(_SEGMENTS))],
                f"customer comment {k}",
            )
            for k in range(1, n_customer + 1)
        ],
        primary_key="c_custkey",
    )

    # ---------------------------------------------------------------- #
    part_rows = []
    for k in range(1, n_part + 1):
        part_rows.append(
            (
                k,
                f"part {k}",
                f"Manufacturer#{k % 5 + 1}",
                f"Brand#{k % 25 + 1}",
                _TYPES[rng.randrange(len(_TYPES))],
                rng.randint(1, 50),
                _CONTAINERS[rng.randrange(len(_CONTAINERS))],
                round(900 + (k % 1000) + rng.uniform(0, 100), 2),
                f"part comment {k}",
            )
        )
    db.create_table(
        "part",
        columns_for("part", config.price_not_null),
        part_rows,
        primary_key="p_partkey",
    )

    def maybe_null(value):
        if config.inject_null_fraction > 0 and rng.random() < config.inject_null_fraction:
            return NULL
        return value

    partsupp_rows = []
    ps_key = 0
    for pk in range(1, n_part + 1):
        for j in range(n_partsupp_per_part):
            ps_key += 1
            partsupp_rows.append(
                (
                    ps_key,
                    pk,
                    1 + (pk * n_partsupp_per_part + j) % n_supplier,
                    rng.randint(1, 9999),
                    # TPC-H spec uses uniform [1, 1000]; we widen to 2000 so
                    # the paper's "p_retailprice < ANY/ALL ps_supplycost"
                    # predicates have non-trivial selectivity at small scale
                    # factors (retail prices sit in 900..2000).
                    maybe_null(round(rng.uniform(1.0, 2000.0), 2)),
                    f"partsupp comment {ps_key}",
                )
            )
    db.create_table(
        "partsupp",
        columns_for("partsupp", config.price_not_null),
        partsupp_rows,
        primary_key="ps_key",
    )

    # ---------------------------------------------------------------- #
    order_rows = []
    lineitem_rows = []
    l_key = 0
    for ok in range(1, n_orders + 1):
        order_date = rng.randrange(_DATE_SPAN - 151)
        n_lines = rng.randint(1, 7)
        total = 0.0
        lines = []
        for ln in range(1, n_lines + 1):
            l_key += 1
            partkey = rng.randint(1, n_part)
            suppkey = 1 + (partkey * n_partsupp_per_part + rng.randrange(4)) % n_supplier
            quantity = rng.randint(1, 50)
            extended = round(quantity * rng.uniform(900.0, 1100.0) / 10, 2)
            total += extended
            ship = order_date + rng.randint(1, 121)
            commit = order_date + rng.randint(30, 90)
            receipt = ship + rng.randint(1, 30)
            lines.append(
                (
                    l_key,
                    ok,
                    partkey,
                    suppkey,
                    ln,
                    quantity,
                    maybe_null(extended),
                    round(rng.uniform(0.0, 0.1), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    "R" if rng.random() < 0.25 else "N",
                    "O" if rng.random() < 0.5 else "F",
                    _date(ship),
                    _date(commit),
                    _date(receipt),
                    _MODES[rng.randrange(len(_MODES))],
                    f"line comment {l_key}",
                )
            )
        lineitem_rows.extend(lines)
        order_rows.append(
            (
                ok,
                rng.randint(1, n_customer),
                "F" if rng.random() < 0.5 else "O",
                round(total, 2),
                _date(order_date),
                _PRIORITIES[rng.randrange(len(_PRIORITIES))],
                f"Clerk#{rng.randrange(1000):09d}",
                0,
                f"order comment {ok}",
            )
        )
    db.create_table(
        "orders",
        columns_for("orders"),
        order_rows,
        primary_key="o_orderkey",
    )
    db.create_table(
        "lineitem",
        columns_for("lineitem", config.price_not_null),
        lineitem_rows,
        primary_key="l_key",
    )

    if config.build_indexes:
        build_paper_indexes(db)
    _seed_known_stats(
        db,
        n_customer=n_customer,
        n_part=n_part,
        n_supplier=n_supplier,
        n_orders=n_orders,
        null_fraction=config.inject_null_fraction,
    )
    return db


def _seed_known_stats(
    db: Database,
    n_customer: int,
    n_part: int,
    n_supplier: int,
    n_orders: int,
    null_fraction: float,
) -> None:
    """Seed the generator's *known* distributions as exact statistics.

    The cost-based planner samples tables for NDV/min/max estimates
    (:mod:`repro.core.stats`); the generator knows the true figures —
    ``p_size`` and ``l_quantity`` are uniform on 1..50, foreign keys are
    uniform over their referenced key space, dates span the TPC-H
    window — so it registers them as persistent overrides.  Overrides
    survive catalog version bumps (index builds, NULL injection reruns),
    keeping planner estimates honest at every scale factor.
    """
    from ..core.stats import ColumnStats, set_table_stats

    date_lo, date_hi = _date(0), _date(_DATE_SPAN)
    uniform_50 = ColumnStats(ndv=50.0, min_value=1, max_value=50)
    set_table_stats(
        db,
        "part",
        columns={
            "p_partkey": ColumnStats(ndv=float(n_part), min_value=1, max_value=n_part),
            "p_size": uniform_50,
        },
    )
    set_table_stats(
        db,
        "partsupp",
        columns={
            "ps_partkey": ColumnStats(ndv=float(n_part), min_value=1, max_value=n_part),
            "ps_supplycost": ColumnStats(
                ndv=1000.0, null_frac=null_fraction, min_value=1.0, max_value=2000.0
            ),
        },
    )
    set_table_stats(
        db,
        "orders",
        columns={
            "o_orderkey": ColumnStats(
                ndv=float(n_orders), min_value=1, max_value=n_orders
            ),
            "o_custkey": ColumnStats(
                ndv=float(min(n_customer, n_orders)), min_value=1, max_value=n_customer
            ),
            "o_orderdate": ColumnStats(
                ndv=float(min(n_orders, _DATE_SPAN - 151)),
                min_value=date_lo,
                max_value=date_hi,
            ),
        },
    )
    n_lineitem = len(db.tables["lineitem"].relation.rows)
    set_table_stats(
        db,
        "lineitem",
        columns={
            "l_orderkey": ColumnStats(
                ndv=float(n_orders), min_value=1, max_value=n_orders
            ),
            "l_partkey": ColumnStats(
                ndv=float(min(n_part, n_lineitem)), min_value=1, max_value=n_part
            ),
            "l_suppkey": ColumnStats(
                ndv=float(min(n_supplier, n_lineitem)),
                min_value=1,
                max_value=n_supplier,
            ),
            "l_quantity": uniform_50,
            "l_extendedprice": ColumnStats(
                ndv=float(min(n_lineitem, 10000)), null_frac=null_fraction
            ),
            "l_shipdate": ColumnStats(
                ndv=float(min(n_lineitem, _DATE_SPAN)),
                min_value=date_lo,
                max_value=date_hi,
            ),
        },
    )


def build_paper_indexes(db: Database) -> None:
    """Create the indexes Section 5 describes.

    "B+ tree indexes on the primary key of each base table were
    automatically built"; "Additional indexes on the foreign keys of
    lineitem, l_partkey and l_suppkey, are created manually"; "we created
    a combined index on (l_partkey, l_suppkey) and two single indexes".
    """
    for table, pk in PRIMARY_KEYS.items():
        if db.has_table(table):
            db.create_hash_index(table, [pk])
    db.create_hash_index("lineitem", ["l_orderkey"])
    db.create_hash_index("lineitem", ["l_partkey"])
    db.create_hash_index("lineitem", ["l_suppkey"])
    db.create_hash_index("lineitem", ["l_partkey", "l_suppkey"])
    db.create_hash_index("partsupp", ["ps_partkey"])
    db.create_hash_index("partsupp", ["ps_partkey", "ps_suppkey"])
    db.create_hash_index("orders", ["o_orderkey"])
