"""TPC-H substrate: schemas, deterministic data generator, paper queries."""

from .schema import PRIMARY_KEYS, TABLE_NAMES, columns_for
from .datagen import (
    BASE_ROWS,
    TpchConfig,
    build_paper_indexes,
    generate,
    generate_stored,
    rows_at,
)
from .validation import assert_valid, validate
from .queries import (
    PAPER_QUERIES,
    QUERY3_VARIANTS,
    count_quantity_block,
    pick_availqty,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)

__all__ = [
    "PRIMARY_KEYS",
    "TABLE_NAMES",
    "columns_for",
    "BASE_ROWS",
    "TpchConfig",
    "build_paper_indexes",
    "generate",
    "generate_stored",
    "rows_at",
    "PAPER_QUERIES",
    "QUERY3_VARIANTS",
    "query1",
    "query2",
    "query3",
    "pick_date_window",
    "pick_size_window",
    "pick_availqty",
    "count_quantity_block",
    "validate",
    "assert_valid",
]
