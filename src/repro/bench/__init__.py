"""Benchmark harness reproducing every figure of the paper's Section 5."""

from .harness import (
    Experiment,
    SeriesPoint,
    StrategyMeasurement,
    block_sizes,
    capturing_traces,
    intermediate_result_size,
    measure_strategy,
    run_point,
    write_bench_artifact,
)
from .plot import render_chart
from .figures import (
    PAPER_STRATEGIES,
    ablation_not_null,
    ablation_optimizations,
    default_db,
    figure4_query1,
    figure5_query2a,
    figure6_query2b,
    figure7_query3a,
    figure8_query3b,
    figure9_query3c,
    text_intermediate_results,
)

__all__ = [
    "Experiment",
    "SeriesPoint",
    "StrategyMeasurement",
    "block_sizes",
    "intermediate_result_size",
    "measure_strategy",
    "capturing_traces",
    "run_point",
    "write_bench_artifact",
    "PAPER_STRATEGIES",
    "default_db",
    "figure4_query1",
    "figure5_query2a",
    "figure6_query2b",
    "figure7_query3a",
    "figure8_query3b",
    "figure9_query3c",
    "text_intermediate_results",
    "render_chart",
    "ablation_not_null",
    "ablation_optimizations",
]
