"""Benchmark harness: run a query across strategies, collect series.

The paper's figures plot elapsed time against the size of each query
block; its text additionally reports the *intermediate result* size (the
fully outer-joined relation the nested relational approach processes) and
the time spent in nest + linking selection alone.  The harness reproduces
all three: each :class:`SeriesPoint` records per-strategy wall time,
deterministic cost counters, result cardinality, and the intermediate
result size.

Wall times on a pure-Python engine do not match a 2005 C++ DBMS; the
*relations between* the series (who wins, by what factor, how slopes
scale with block size) are the reproduction target.  EXPERIMENTS.md
records both.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from ..engine.catalog import Database
from ..engine.metrics import Metrics, collect
from ..engine.trace import tracing
from ..core.blocks import NestedQuery
from ..core.planner import make_strategy
from ..core.reduce import reduce_all
from ..errors import InvalidArgumentError


@dataclass
class StrategyMeasurement:
    """One strategy's run at one series point."""

    strategy: str
    seconds: float
    result_rows: int
    metrics: Dict[str, int]
    #: serialized execution trace (``Trace.to_dict``); only populated
    #: inside a :func:`capturing_traces` scope
    trace: Optional[Dict] = None

    @property
    def cost(self) -> int:
        """Disk-era deterministic cost (see ``Metrics.weighted_cost``)."""
        from ..engine.metrics import IO_WEIGHTS

        return sum(
            value * IO_WEIGHTS.get(name, 1)
            for name, value in self.metrics.items()
        )

    @property
    def raw_cost(self) -> int:
        """Unweighted counter sum (pure operation count)."""
        return sum(self.metrics.values())


@dataclass
class SeriesPoint:
    """One x-position of a figure: block sizes + per-strategy numbers."""

    label: str
    block_sizes: Tuple[int, ...]
    intermediate_rows: int
    measurements: Dict[str, StrategyMeasurement] = field(default_factory=dict)


@dataclass
class Experiment:
    """A full figure/table: an ordered list of series points."""

    experiment_id: str
    title: str
    points: List[SeriesPoint] = field(default_factory=list)

    def strategies(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for name in point.measurements:
                if name not in names:
                    names.append(name)
        return names

    def format_table(self, metric: str = "seconds") -> str:
        """Render the figure as an aligned text table.

        *metric* is ``"seconds"``, ``"cost"`` or ``"rows"``.
        """
        strategies = self.strategies()
        header = ["block sizes", "IR rows"] + strategies
        rows: List[List[str]] = []
        for point in self.points:
            row = [point.label, str(point.intermediate_rows)]
            for name in strategies:
                m = point.measurements.get(name)
                if m is None:
                    row.append("-")
                elif metric == "seconds":
                    row.append(f"{m.seconds:.4f}")
                elif metric == "cost":
                    row.append(str(m.cost))
                elif metric == "rows":
                    row.append(str(m.result_rows))
                else:
                    row.append(str(m.metrics.get(metric, 0)))
            rows.append(row)
        widths = [len(h) for h in header]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.experiment_id}: {self.title} ({metric}) ==",
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-serializable form (the ``BENCH_<figure>.json`` artifact):
        per-point, per-strategy seconds/cost/rows/metrics plus the
        per-operator trace when captured."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "points": [
                {
                    "label": point.label,
                    "block_sizes": list(point.block_sizes),
                    "intermediate_rows": point.intermediate_rows,
                    "measurements": {
                        name: {
                            "seconds": m.seconds,
                            "cost": m.cost,
                            "result_rows": m.result_rows,
                            "metrics": dict(m.metrics),
                            "trace": m.trace,
                        }
                        for name, m in point.measurements.items()
                    },
                }
                for point in self.points
            ],
        }

    def speedup(self, baseline: str, contender: str) -> List[float]:
        """Per-point wall-time ratio baseline/contender (>1 = contender wins)."""
        out = []
        for point in self.points:
            b = point.measurements.get(baseline)
            c = point.measurements.get(contender)
            if b is None or c is None or c.seconds == 0:
                out.append(float("nan"))
            else:
                out.append(b.seconds / c.seconds)
        return out


# When true, measure_strategy attaches a serialized execution trace to
# each measurement via one extra (untimed) traced run.
_capture_traces = False


@contextmanager
def capturing_traces():
    """Attach per-operator traces to measurements taken inside the scope.

    The traced run is separate from the timed runs, so trace capture
    never perturbs the reported wall times.
    """
    global _capture_traces
    previous = _capture_traces
    _capture_traces = True
    try:
        yield
    finally:
        _capture_traces = previous


def write_bench_artifact(
    name: str,
    experiments: Sequence["Experiment"],
    directory: str,
    scale_factor: Optional[float] = None,
) -> str:
    """Write a ``BENCH_<name>.json`` artifact and return its path.

    The payload bundles every experiment of one figure (variants a/b/c
    of Figures 7-9 share one file); measurements carry per-operator
    traces when taken inside a :func:`capturing_traces` scope.
    """
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    payload = {
        "figure": name,
        "scale_factor": scale_factor,
        "experiments": [e.to_dict() for e in experiments],
    }
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def measure_strategy(
    query: NestedQuery, db: Database, strategy_name: str, repeats: int = 1
) -> StrategyMeasurement:
    """Run one strategy, returning the best-of-*repeats* wall time."""
    strategy = make_strategy(strategy_name)
    best: Optional[float] = None
    metrics_snapshot: Dict[str, int] = {}
    result_rows = 0
    for _ in range(max(1, repeats)):
        with collect() as m:
            start = time.perf_counter()
            result = strategy.execute(query, db)
            elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            metrics_snapshot = m.snapshot()
            result_rows = len(result)
    assert best is not None
    trace_dict: Optional[Dict] = None
    if _capture_traces:
        from ..core.planner import run

        with tracing() as trace:
            run(query, db, strategy=strategy_name)
        trace_dict = trace.to_dict()
    return StrategyMeasurement(
        strategy=strategy_name,
        seconds=best,
        result_rows=result_rows,
        metrics=metrics_snapshot,
        trace=trace_dict,
    )


def intermediate_result_size(query: NestedQuery, db: Database) -> int:
    """Rows in the fully outer-joined intermediate relation.

    This is the main cost parameter the paper reports ("one of the main
    parameters we use is the size of the intermediate result").
    """
    from ..core.optimized import OptimizedNestedRelationalStrategy

    reduced = reduce_all(query, db)
    chain = list(query.root.walk())
    if len(chain) == 1:
        return len(reduced[1].relation)
    if query.is_linear:
        strategy = OptimizedNestedRelationalStrategy()
        joined = strategy._join_chain(chain, reduced)
        return len(joined)
    # tree query: accumulate the join the original algorithm performs
    total = 0
    from ..engine.operators import LeftOuterHashJoin, CrossJoin, as_relation
    from ..engine.expressions import conjoin

    rel = reduced[query.root.index].relation
    for child in query.root.walk():
        if child is query.root:
            continue
        crel = reduced[child.index]
        equi = [c for c in child.correlations if c.is_equality]
        other = [c for c in child.correlations if not c.is_equality]
        residual = conjoin([c.as_expr() for c in other]) if other else None
        rel = as_relation(
            LeftOuterHashJoin(
                rel,
                crel.relation,
                [c.outer_ref for c in equi],
                [c.inner_ref for c in equi],
                residual=residual,
            )
        )
    return len(rel)


def block_sizes(query: NestedQuery, db: Database) -> Tuple[int, ...]:
    """Reduced size |T_i| of every block, in DFS order (the paper's
    'size of each query block' x-axis)."""
    reduced = reduce_all(query, db)
    return tuple(len(reduced[b.index].relation) for b in query.root.walk())


@dataclass
class ProcessingProfile:
    """Section 5.2's in-text numbers for one query instance: the size of
    the intermediate result and the time spent in nest + linking
    selection alone, for the original (two passes) and the optimized
    (one fused pass) nested relational approaches."""

    label: str
    intermediate_rows: int
    original_seconds: float
    optimized_seconds: float

    @property
    def ratio(self) -> float:
        """original / optimized — the paper reports roughly 2x (two
        passes versus one over the intermediate result)."""
        if self.optimized_seconds == 0:
            return float("inf")
        return self.original_seconds / self.optimized_seconds


def processing_profile(
    sql: str, db: Database, repeats: int = 3
) -> ProcessingProfile:
    """Isolate the nest + linking-selection stage for a *linear* query.

    Both variants are timed directly over the same pre-joined
    intermediate relation (reduction and outer joins excluded), exactly
    the quantity the paper reports as "the processing time of nest and
    linking selection".  Original = one sort-based nest plus one linking
    selection per level (two passes per level); optimized = the fused
    single-pass pipeline.
    """
    from ..core.compute import set_predicate_for
    from ..core.nest import nest_sorted
    from ..core.optimized import (
        OptimizedNestedRelationalStrategy,
        _single_pass,
    )
    from ..core.selection import linking_selection, pseudo_selection

    query = repro.compile_sql(sql, db)
    if not query.is_linear:
        raise InvalidArgumentError("processing_profile requires a linear query")
    chain = list(query.root.walk())
    reduced = reduce_all(query, db)
    joined = OptimizedNestedRelationalStrategy()._join_chain(chain, reduced)

    owner: Dict[str, int] = {}
    for idx, rb in reduced.items():
        for ref in rb.attr_refs:
            owner[ref] = idx

    def original_stage() -> None:
        rel = joined
        for level in range(len(chain) - 1, 0, -1):
            child = chain[level]
            link = child.link
            assert link is not None
            crel = reduced[child.index]
            path_indices = {b.index for b in chain[:level]}
            by = [r for r in rel.schema.names if owner.get(r) in path_indices]
            keep = [r for r in ((link.inner_ref,) if link.inner_ref else ())]
            keep.append(crel.rid_ref)
            nested = nest_sorted(rel, by, keep)
            predicate = set_predicate_for(link)
            if level == 1:
                rel = linking_selection(
                    nested, predicate, link.outer_ref, link.inner_ref,
                    pk_ref=crel.rid_ref,
                )
            else:
                node = chain[level - 1]
                pad = [r for r in by if owner.get(r) == node.index]
                rel = pseudo_selection(
                    nested, predicate, link.outer_ref, link.inner_ref,
                    pk_ref=crel.rid_ref, pad_refs=pad,
                )

    def optimized_stage() -> None:
        _single_pass(chain, reduced, joined)

    def best(fn) -> float:
        times = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    sizes = block_sizes(query, db)
    return ProcessingProfile(
        label="/".join(str(s) for s in sizes),
        intermediate_rows=len(joined),
        original_seconds=best(original_stage) if len(chain) > 1 else 0.0,
        optimized_seconds=best(optimized_stage) if len(chain) > 1 else 0.0,
    )


def run_point(
    sql: str,
    db: Database,
    strategies: Sequence[str],
    label: Optional[str] = None,
    repeats: int = 1,
) -> SeriesPoint:
    """Measure every strategy on one query instance."""
    query = repro.compile_sql(sql, db)
    sizes = block_sizes(query, db)
    point = SeriesPoint(
        label=label or "/".join(str(s) for s in sizes),
        block_sizes=sizes,
        intermediate_rows=intermediate_result_size(query, db),
    )
    for name in strategies:
        point.measurements[name] = measure_strategy(query, db, name, repeats)
    return point
