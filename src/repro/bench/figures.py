"""One function per paper figure/table: build the workload, run the
strategies, return an :class:`~repro.bench.harness.Experiment`.

Scale mapping.  The paper ran TPC-H SF1 (orders 1.5M, part 200K) and
controlled block sizes with selection constants: Query 1's outer block
4K..16K orders over a 70K lineitem block; Queries 2/3 used part blocks
12K..48K over a 16K partsupp block and a 12K lineitem block.  We keep the
*proportions* and scale everything by ``sf``: targets are computed as the
same fraction of each table, so the series shape is preserved.  The
helpers below derive the actual selection constants from the generated
data (like the paper, by "changing constants on the selections and thus
varying their selectivity factor").

Default strategy set per figure = what the paper plots: the native
(System A) approach, the original nested relational approach, and the
optimized (pipelined) nested relational approach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.catalog import Database
from ..tpch import (
    TpchConfig,
    generate,
    pick_availqty,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)
from .harness import Experiment, run_point

#: the three series every paper figure plots
PAPER_STRATEGIES = (
    "system-a-native",
    "nested-relational",
    "nested-relational-optimized",
)

#: paper block-size targets as fractions of the table size (SF1 values
#: 4K/8K/12K/16K of 1.5M orders; 12K/24K/36K/48K of 200K part; 16K of
#: 800K partsupp)
Q1_OUTER_FRACTIONS = (4_000 / 1_500_000, 8_000 / 1_500_000,
                      12_000 / 1_500_000, 16_000 / 1_500_000)
Q23_OUTER_FRACTIONS = (12_000 / 200_000, 24_000 / 200_000,
                       36_000 / 200_000, 48_000 / 200_000)
Q23_PARTSUPP_FRACTION = 16_000 / 800_000


def default_db(sf: float = 0.01, seed: int = 2005, **kwargs) -> Database:
    """The benchmark database (nullable price columns — the paper's
    featured 'general case')."""
    return generate(TpchConfig(scale_factor=sf, seed=seed, **kwargs))


def _q1_windows(db: Database, fractions: Sequence[float]) -> List[tuple]:
    n_orders = len(db.relation("orders"))
    return [pick_date_window(db, max(4, int(f * n_orders))) for f in fractions]


def _q23_sizes(db: Database, fractions: Sequence[float]) -> List[tuple]:
    n_part = len(db.relation("part"))
    return [pick_size_window(db, max(4, int(f * n_part))) for f in fractions]


def _q23_availqty(db: Database) -> int:
    n_ps = len(db.relation("partsupp"))
    return pick_availqty(db, max(4, int(Q23_PARTSUPP_FRACTION * n_ps)))


QUANTITY_EQ = 25  # Z: selects ~2% of lineitem (l_quantity uniform 1..50)


def figure4_query1(
    db: Optional[Database] = None,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    repeats: int = 1,
) -> Experiment:
    """Figure 4: Query 1 (one-level ALL), outer block 4K..16K scaled."""
    db = db or default_db()
    exp = Experiment("F4", "Query 1: one-level > ALL (orders vs lineitem)")
    for lo, hi in _q1_windows(db, Q1_OUTER_FRACTIONS):
        exp.points.append(run_point(query1(lo, hi), db, strategies, repeats=repeats))
    return exp


def _figure_q2(quantifier: str, exp_id: str, title: str, db, strategies, repeats):
    db = db or default_db()
    exp = Experiment(exp_id, title)
    availqty = _q23_availqty(db)
    for lo, hi in _q23_sizes(db, Q23_OUTER_FRACTIONS):
        sql = query2(quantifier, lo, hi, availqty, QUANTITY_EQ)
        exp.points.append(run_point(sql, db, strategies, repeats=repeats))
    return exp


def figure5_query2a(db=None, strategies=PAPER_STRATEGIES, repeats: int = 1):
    """Figure 5: Query 2a — mixed ANY / NOT EXISTS, linear."""
    return _figure_q2(
        "any", "F5", "Query 2a: < ANY + NOT EXISTS (mixed, linear)",
        db, strategies, repeats,
    )


def figure6_query2b(db=None, strategies=PAPER_STRATEGIES, repeats: int = 1):
    """Figure 6: Query 2b — negative ALL / NOT EXISTS, linear."""
    return _figure_q2(
        "all", "F6", "Query 2b: < ALL + NOT EXISTS (negative, linear)",
        db, strategies, repeats,
    )


def _figure_q3(quantifier, existential, exp_id, title, db, strategies, repeats):
    db = db or default_db()
    availqty = _q23_availqty(db)
    experiments = {}
    for variant in ("a", "b", "c"):
        exp = Experiment(f"{exp_id}({variant})", f"{title}, variant ({variant})")
        for lo, hi in _q23_sizes(db, Q23_OUTER_FRACTIONS):
            sql = query3(quantifier, existential, variant, lo, hi, availqty, QUANTITY_EQ)
            exp.points.append(run_point(sql, db, strategies, repeats=repeats))
        experiments[variant] = exp
    return experiments


def figure7_query3a(db=None, strategies=PAPER_STRATEGIES, repeats: int = 1):
    """Figure 7 (a,b,c): Query 3a — mixed ALL / EXISTS, tree-correlated."""
    return _figure_q3("all", "exists", "F7", "Query 3a: < ALL + EXISTS",
                      db, strategies, repeats)


def figure8_query3b(db=None, strategies=PAPER_STRATEGIES, repeats: int = 1):
    """Figure 8 (a,b,c): Query 3b — negative ALL / NOT EXISTS."""
    return _figure_q3("all", "not exists", "F8", "Query 3b: < ALL + NOT EXISTS",
                      db, strategies, repeats)


def figure9_query3c(db=None, strategies=PAPER_STRATEGIES, repeats: int = 1):
    """Figure 9 (a,b,c): Query 3c — positive ANY / EXISTS."""
    return _figure_q3("any", "exists", "F9", "Query 3c: < ANY + EXISTS",
                      db, strategies, repeats)


#: outer-block fractions for the T-IR profile.  The paper's intermediate
#: results were 40K..165K rows at SF1; the paper fractions would leave a
#: scaled-down IR too small to time, so T-IR widens the date windows to
#: keep the IR in the hundreds-to-thousands range while preserving the
#: 1:2:3:4 progression of the paper's series.
TIR_OUTER_FRACTIONS = (0.12, 0.24, 0.36, 0.48)


def text_intermediate_results(db=None, repeats: int = 3) -> List["ProcessingProfile"]:
    """Section 5.2 in-text series: intermediate-result sizes and the
    nest + linking-selection processing gap between the original and the
    optimized nested relational approaches (original ≈ 2 passes over the
    intermediate result, optimized ≈ 1 fused pass)."""
    from .harness import ProcessingProfile, processing_profile

    db = db or default_db()
    profiles = []
    for lo, hi in _q1_windows(db, TIR_OUTER_FRACTIONS):
        profiles.append(processing_profile(query1(lo, hi), db, repeats=repeats))
    return profiles


def format_profiles(profiles: Sequence["ProcessingProfile"]) -> str:
    """Render the T-IR series the way the paper reports it."""
    lines = [
        "== T-IR: nest + linking selection, original vs optimized NR ==",
        f"{'block sizes':>16} {'IR rows':>8} {'original (s)':>13} "
        f"{'optimized (s)':>14} {'ratio':>6}",
    ]
    for p in profiles:
        lines.append(
            f"{p.label:>16} {p.intermediate_rows:>8} {p.original_seconds:>13.4f} "
            f"{p.optimized_seconds:>14.4f} {p.ratio:>6.2f}"
        )
    return "\n".join(lines)


def ablation_not_null(db_nullable=None, db_notnull=None, repeats: int = 1) -> Dict[str, Experiment]:
    """A-NULL: the NOT NULL constraint flips System A's Query 1 plan from
    nested iteration to antijoin; the NR approach is unaffected."""
    db_nullable = db_nullable or default_db()
    db_notnull = db_notnull or default_db(price_not_null=True)
    out = {}
    for label, db in (("nullable", db_nullable), ("not-null", db_notnull)):
        exp = Experiment(
            f"A-NULL[{label}]", f"Query 1 with l_extendedprice {label}"
        )
        strategies = ["system-a-native", "nested-relational-optimized"]
        if label == "not-null":
            strategies.append("classical-unnesting")
        # smallest and largest paper sizes: the small point sits before the
        # probe-vs-scan crossover, the large one safely beyond it
        for lo, hi in _q1_windows(db, (Q1_OUTER_FRACTIONS[0], Q1_OUTER_FRACTIONS[3])):
            exp.points.append(
                run_point(query1(lo, hi), db, strategies, repeats=repeats)
            )
        out[label] = exp
    return out


def ablation_optimizations(db=None, repeats: int = 1) -> Experiment:
    """A-OPT: every nested relational variant on the linear Query 2b."""
    db = db or default_db()
    availqty = _q23_availqty(db)
    exp = Experiment("A-OPT", "Query 2b across NR variants and baselines")
    strategies = (
        "nested-relational",
        "nested-relational-sorted",
        "nested-relational-optimized",
        "nested-relational-bottomup",
    )
    for lo, hi in _q23_sizes(db, Q23_OUTER_FRACTIONS[:2]):
        sql = query2("all", lo, hi, availqty, QUANTITY_EQ)
        exp.points.append(run_point(sql, db, strategies, repeats=repeats))
    return exp
