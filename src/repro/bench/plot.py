"""ASCII line charts for experiment series.

The paper presents its evaluation as line plots (elapsed time on the
Y-axis, block sizes on the X-axis).  :func:`render_chart` draws the same
picture in plain text so figures can live in EXPERIMENTS.md, terminals
and CI logs — one column group per series point, one glyph per strategy,
a log-ish Y scale when series span orders of magnitude (as the paper's
native-vs-NR series do).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .harness import Experiment

#: plotting glyphs assigned to strategies in first-seen order
GLYPHS = "*o+x#@%&"


def _scale(values: Sequence[float], log: bool) -> List[float]:
    if not log:
        return list(values)
    return [math.log10(v) if v > 0 else 0.0 for v in values]


def render_chart(
    experiment: Experiment,
    metric: str = "cost",
    height: int = 12,
    width_per_point: int = 14,
    log_scale: Optional[bool] = None,
) -> str:
    """Render one experiment as an ASCII chart.

    *metric* is ``"seconds"``, ``"cost"``, ``"rows"`` or a raw counter
    name.  *log_scale* defaults to automatic: on when the series span
    more than a 20x range (the paper's interesting figures do).
    """
    strategies = experiment.strategies()
    series: Dict[str, List[float]] = {name: [] for name in strategies}
    for point in experiment.points:
        for name in strategies:
            m = point.measurements.get(name)
            if m is None:
                series[name].append(0.0)
            elif metric == "seconds":
                series[name].append(m.seconds)
            elif metric == "cost":
                series[name].append(float(m.cost))
            elif metric == "rows":
                series[name].append(float(m.result_rows))
            else:
                series[name].append(float(m.metrics.get(metric, 0)))

    flat = [v for vs in series.values() for v in vs if v > 0]
    if not flat:
        return f"(no data for metric {metric!r})"
    if log_scale is None:
        log_scale = max(flat) / min(flat) > 20

    scaled = {name: _scale(vs, log_scale) for name, vs in series.items()}
    lo = min(v for vs in scaled.values() for v in vs)
    hi = max(v for vs in scaled.values() for v in vs)
    span = (hi - lo) or 1.0

    n_points = len(experiment.points)
    chart_width = n_points * width_per_point
    grid = [[" "] * chart_width for _ in range(height)]
    for s_idx, name in enumerate(strategies):
        glyph = GLYPHS[s_idx % len(GLYPHS)]
        for p_idx, value in enumerate(scaled[name]):
            row = height - 1 - int(round((value - lo) / span * (height - 1)))
            col = p_idx * width_per_point + width_per_point // 2
            if grid[row][col] != " ":
                # collision: nudge right so coincident series stay visible
                col = min(col + 1, chart_width - 1)
            grid[row][col] = glyph

    unit = f"log10({metric})" if log_scale else metric
    lines = [f"== {experiment.experiment_id}: {experiment.title} [{unit}] =="]
    for r, row in enumerate(grid):
        value = hi - (r / (height - 1)) * span if height > 1 else hi
        label = f"{value:8.2f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * chart_width)
    x_labels = "".join(
        point.label.center(width_per_point) for point in experiment.points
    )
    lines.append(" " * 10 + x_labels)
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}" for i, name in enumerate(strategies)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)
