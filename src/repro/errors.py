"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch a single base class.  The hierarchy mirrors the layers of
the system: engine (physical evaluation), SQL front-end, and the nested
relational core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class TypeError_(ReproError):
    """A value has a type that an operator or expression cannot handle.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExpressionError(ReproError):
    """An expression is malformed or evaluated over an incompatible row."""


class ParseError(ReproError):
    """The SQL parser rejected the input text."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class AnalysisError(ReproError):
    """Semantic analysis of a parsed query failed (unknown table/column,
    ambiguous reference, unsupported construct, ...)."""


class PlanError(ReproError):
    """A strategy cannot produce a plan for the given query shape."""


class UnsoundRewriteError(PlanError):
    """A classical rewrite (e.g. ALL -> antijoin) was requested in a context
    where it would not preserve SQL semantics (NULLable linked attribute).

    The paper's Section 2 motivates the nested relational approach precisely
    with this failure mode; the baseline strategies raise this error instead
    of silently producing wrong answers.
    """


class InvalidArgumentError(ReproError, ValueError):
    """A public API was called with an argument outside its domain
    (bad strategy/backend name, out-of-range fuzzer setting, ...).

    Also a :class:`ValueError` so pre-existing callers that caught the
    bare builtin keep working across the typed-error migration.
    """


class CatalogError(ReproError):
    """A table or index name is unknown or already defined."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class InjectedFaultError(ExecutionError):
    """A deliberate failure injected via ``REPRO_FAULT`` (tests/fuzzing).

    Subclasses :class:`ExecutionError` so the fault exercises exactly the
    recovery paths a real worker failure would: the morsel pool drains,
    and ``degrade='sequential'`` retries on the single-threaded backend.
    """


class SpillError(ExecutionError):
    """A spill-to-disk pass failed (temp-file write error, unusable spill
    directory, or the ``REPRO_FAULT=spill_io`` injected write failure).

    Subclasses :class:`ExecutionError` — *not*
    :class:`ResourceGovernanceError` — because a failed spill is an
    environmental fault, not a governance verdict: the degradation
    ladder may still retry the query on the single-threaded backend,
    which needs no spill files at all.
    """


class ResourceGovernanceError(ExecutionError):
    """Base class for errors raised by the per-execution
    :class:`~repro.engine.governor.ResourceGovernor` (deadline, memory
    budget, cooperative cancellation).

    These are *final* verdicts: the degradation ladder never retries a
    governance breach — a deadline that passed on the parallel backend
    has also passed for a sequential retry.
    """


class QueryTimeoutError(ResourceGovernanceError):
    """The execution ran past its ``timeout_ms`` deadline.

    Raised cooperatively at morsel and operator boundaries, so the
    overshoot is bounded by the longest uninterruptible operator step.
    """


class ResourceExhaustedError(ResourceGovernanceError):
    """The execution's accounted allocations exceeded ``memory_limit_mb``.

    Fed by the accounting hooks in hash-join builds, nest grouping and
    batch materialization; the estimate is approximate but monotone.
    """


class QueryCancelledError(ResourceGovernanceError):
    """The execution's cancellation token was triggered
    (:meth:`~repro.engine.governor.ResourceGovernor.cancel`)."""


class ServeError(ReproError):
    """Base class for errors raised by the query server
    (:mod:`repro.serve`): admission control, tenant quotas, and
    lifecycle.  Execution-side failures keep their own types — the
    server maps every :class:`ReproError` subtype onto an HTTP status,
    it never re-wraps them.
    """


class ServerOverloadedError(ServeError):
    """The server's global admission queue is full (HTTP 429).

    Raised *before* any work is queued: the request was never admitted,
    so retrying after a backoff is always safe.
    """


class TenantQuotaExceededError(ServeError):
    """One tenant exceeded its own admission quota (HTTP 429).

    Per-tenant queues are bounded separately from the global queue so a
    single flooding tenant is rejected with this error while other
    tenants' requests continue to be admitted and served fairly.
    """


class ServerDrainingError(ServeError):
    """The server is draining (SIGTERM received; HTTP 503).

    In-flight queries run to completion; new submissions are rejected
    with this error so load balancers fail over promptly.
    """


class OracleError(ReproError):
    """Base class for errors raised by the external differential oracle
    (:mod:`repro.oracle`): adapter setup, dialect translation, and
    cross-engine result comparison."""


class OracleUnavailableError(OracleError):
    """The requested external engine cannot be used — its package is not
    installed (DuckDB) or the adapter name is unknown.  Callers that
    treat the external oracle as optional catch this and skip."""


class OracleUnsupportedError(OracleError):
    """The query uses a construct the oracle cannot compare faithfully
    (e.g. ``LIMIT`` without a total ``ORDER BY``, whose row choice is
    implementation-defined), or a construct the dialect renderer cannot
    translate for the target engine."""


class OracleDivergenceError(OracleError):
    """An external engine disagreed with one of our strategies on the
    same SQL over the same data.

    Carries the full :class:`repro.oracle.diff.OracleComparison` report
    as :attr:`comparison` — first differing row, per-side counts, the
    strategy/backend that produced our rows, and the dialect SQL the
    external engine actually ran.
    """

    def __init__(self, message: str, comparison=None):
        super().__init__(message)
        #: the :class:`repro.oracle.diff.OracleComparison` behind this error
        self.comparison = comparison
