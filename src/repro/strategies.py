"""The strategy registry: one catalogue of every evaluation strategy.

Strategies self-register at import time with :func:`register`; the
planner, the CLI, the benchmark harness and the fuzzer all resolve
names through this module instead of keeping private name->class
tables.  Each entry records which execution *backend* the strategy runs
on (``"row"`` for the tuple-at-a-time iterator engine, ``"vector"`` for
the columnar batch engine) so the Session API can route
``execute(backend=...)`` requests without special-casing names.

Registering::

    from repro.strategies import register

    @register("my-strategy", description="...")
    class MyStrategy:
        def execute(self, query, db): ...

or, for parameterized variants::

    register("my-strategy-sorted", description="...")(
        lambda: MyStrategy(nest_impl="sorted")
    )

``"auto"`` is *not* an entry: it is the planner's routing policy
(:func:`repro.core.planner.choose_strategy`), accepted by the execution
entry points but never instantiated from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import PlanError

#: the two execution substrates a strategy can run on
ROW_BACKEND = "row"
VECTOR_BACKEND = "vector"
BACKENDS = (ROW_BACKEND, VECTOR_BACKEND)

#: name of the planner's routing policy (not a registry entry)
AUTO = "auto"


@dataclass(frozen=True)
class StrategyInfo:
    """One registered strategy: name, factory, backend tag, cost hook.

    ``cost`` is the optional pricing hook consumed by the cost-based
    planner: a callable taking a :class:`~repro.core.stats.PlanStats`
    and returning the strategy's estimated cost in row-ops.  Strategies
    registered without one still participate in ``auto`` — they are
    priced at :func:`repro.core.optimizer.default_cost`, a deliberately
    pessimistic generic estimate.
    """

    name: str
    factory: Callable[[], object]
    backend: str = ROW_BACKEND
    description: str = ""
    cost: Optional[Callable[[object], float]] = None

    def make(self) -> object:
        return self.factory()

    @property
    def costed(self) -> bool:
        """Whether this strategy registered its own ``cost`` hook."""
        return self.cost is not None


_REGISTRY: Dict[str, StrategyInfo] = {}
_loaded = False


def register(
    name: str,
    *,
    backend: str = ROW_BACKEND,
    description: str = "",
    cost: Optional[Callable[[object], float]] = None,
    replace: bool = False,
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Register a strategy factory under *name*; usable as a decorator.

    The factory is any zero-argument callable returning an object with
    an ``execute(query, db)`` method (a class with a no-arg constructor
    qualifies).  *cost* optionally prices the strategy for the
    cost-based planner: ``cost(plan_stats) -> float`` over a
    :class:`~repro.core.stats.PlanStats`; without one the planner falls
    back to a documented pessimistic default
    (:func:`repro.core.optimizer.default_cost`) and ``--list-strategies``
    marks the entry accordingly.  Re-registering an existing name
    raises unless ``replace=True`` (tests use replacement to stub
    strategies).
    """
    if backend not in BACKENDS:
        raise PlanError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if name == AUTO:
        raise PlanError("'auto' is the planner policy and cannot be registered")

    def _register(factory: Callable[[], object]) -> Callable[[], object]:
        if name in _REGISTRY and not replace:
            raise PlanError(f"strategy {name!r} is already registered")
        _REGISTRY[name] = StrategyInfo(
            name=name,
            factory=factory,
            backend=backend,
            description=description,
            cost=cost,
        )
        return factory

    return _register


def unregister(name: str) -> None:
    """Remove a registry entry (test hook)."""
    _REGISTRY.pop(name, None)


def ensure_loaded() -> None:
    """Import every module that self-registers strategies.

    Registration happens at module import; this makes 'the registry'
    deterministic regardless of which submodule a caller touched first.
    """
    global _loaded
    if _loaded:
        return
    _loaded = True
    from .core import compute as _compute  # noqa: F401
    from .core import optimized as _optimized  # noqa: F401
    from .baselines import (  # noqa: F401
        agg_rewrite as _agg,
        boolean_aggregate as _boolagg,
        count_rewrite as _count,
        native as _native,
        nested_iteration as _ni,
        unnesting as _unnest,
    )
    from .engine.vector import strategy as _vector  # noqa: F401


def names() -> List[str]:
    """Sorted names of every registered strategy (without ``"auto"``)."""
    ensure_loaded()
    return sorted(_REGISTRY)


def entries() -> List[StrategyInfo]:
    """Every registry entry, sorted by name."""
    ensure_loaded()
    return [_REGISTRY[name] for name in names()]


def info(name: str) -> StrategyInfo:
    """The :class:`StrategyInfo` registered under *name*."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlanError(
            f"unknown strategy {name!r}; available: {names() + [AUTO]}"
        ) from None


def is_registered(name: str) -> bool:
    ensure_loaded()
    return name in _REGISTRY


def make(name: str) -> object:
    """Instantiate the strategy registered under *name*."""
    return info(name).make()


def resolve(name: str, backend: Optional[str] = None) -> object:
    """Instantiate a strategy honouring an explicit *backend* request.

    * ``backend=None`` — *name* resolves as registered (any backend).
    * ``backend="row"`` / ``"vector"`` — *name* must be registered on
      that backend, except that backend-generic requests map onto their
      counterpart: asking for ``nested-relational`` on the vector
      backend returns the vectorized Algorithm 1 and vice versa.

    ``"auto"`` is resolved by the caller (the planner's policy) for the
    row backend; on the vector backend it maps to the vectorized
    Algorithm 1 directly.
    """
    ensure_loaded()
    if backend is not None and backend not in BACKENDS:
        raise PlanError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend is None:
        return make(name)
    entry = info(_BACKEND_ALIASES.get(backend, {}).get(name, name))
    if entry.backend != backend:
        raise PlanError(
            f"strategy {entry.name!r} runs on the {entry.backend!r} backend, "
            f"but backend={backend!r} was requested"
        )
    return entry.make()


#: backend-generic strategy names mapped to their per-backend entries
_BACKEND_ALIASES: Dict[str, Dict[str, str]] = {
    VECTOR_BACKEND: {
        AUTO: "nested-relational-vectorized",
        "nested-relational": "nested-relational-vectorized",
    },
    ROW_BACKEND: {
        "nested-relational-vectorized": "nested-relational",
        "nested-relational-parallel": "nested-relational",
    },
}


def describe() -> str:
    """One line per strategy: name, backend, cost participation and
    description (CLI listing).  ``costed`` entries registered their own
    ``cost`` hook; ``default`` entries are priced pessimistically by
    the planner's fallback."""
    ensure_loaded()
    width = max(len(n) for n in names()) if _REGISTRY else 0
    lines = []
    for entry in entries():
        pricing = "costed " if entry.costed else "default"
        lines.append(
            f"{entry.name.ljust(width)}  [{entry.backend}]  "
            f"[{pricing}]  {entry.description}"
        )
    lines.append(
        f"{AUTO.ljust(width)}  [row]  [policy ]  "
        "cost-based choice over every applicable strategy"
    )
    return "\n".join(lines)
