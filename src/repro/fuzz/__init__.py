"""Randomized differential fuzzing of the subquery strategies.

This package is the standing correctness gate for the engine: it
generates random multi-level subquery queries (every linking operator,
linear and tree shapes, correlated and not) over random NULL-heavy
databases, runs every registered strategy against the tuple-iteration
oracle, and — on the first disagreement — minimizes the failing
(query, database) pair and freezes it as a self-contained pytest
regression under ``tests/fuzz_corpus/``.

Entry points:

* ``repro fuzz`` — the CLI command (see :mod:`repro.cli`);
* :func:`run_fuzz` — the same loop as a library call;
* :class:`DifferentialRunner` / :class:`QueryGenerator` /
  :func:`random_database_spec` — the pieces, for targeted tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .datagen import DatabaseSpec, TableSpec, random_database_spec
from .generator import FuzzConfig, QueryGenerator, case_rng
from .runner import (
    ALWAYS_STRATEGIES,
    DEFAULT_STRATEGIES,
    GUARDED_STRATEGIES,
    ORACLE,
    DifferentialRunner,
    Failure,
    FuzzCase,
    FuzzReport,
    MiscountingSpanStrategy,
    MutatedLinkStrategy,
    generate_case,
    mutate_first_link,
)
from .shrink import is_interesting, shrink_case
from .corpus import (
    applicable_strategies,
    case_digest,
    corpus_module_source,
    write_corpus_file,
)


@dataclass
class FuzzOutcome:
    """What a full fuzz-shrink-report cycle produced."""

    report: FuzzReport
    shrunk_case: Optional[FuzzCase] = None
    shrunk_failure: Optional[Failure] = None
    corpus_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report.ok


def run_fuzz(
    config: FuzzConfig,
    runner: Optional[DifferentialRunner] = None,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    progress=None,
) -> FuzzOutcome:
    """Fuzz; on failure, minimize and (optionally) write a corpus file.

    This is the whole pipeline behind ``repro fuzz``: generate cases from
    ``(config.seed, iteration)``, differentially check them, stop at the
    first failure, shrink it, and freeze the minimized pair under
    *corpus_dir* as a pytest regression.
    """
    if runner is None:
        runner = DifferentialRunner(
            strategies=config.strategies, logic=config.logic
        )
    report = runner.run(config, progress=progress)
    outcome = FuzzOutcome(report=report)
    if report.ok or not report.failures:
        return outcome

    failure = report.failures[0]
    if shrink and is_interesting(failure):
        case, failure = shrink_case(failure.case, runner.check_case)
        outcome.shrunk_case = case
    else:
        case = failure.case
        outcome.shrunk_case = case
    outcome.shrunk_failure = failure
    # Freeze the per-operator traces of the oracle and the failing
    # strategy at the minimized case into the failure's provenance.
    runner.attach_trace_text(failure)
    if corpus_dir is not None:
        # External divergences get a second, engine-gated test in the
        # frozen module so the regression keeps exercising the real
        # engine wherever that engine is installed.
        oracle = (
            getattr(runner, "oracle", None)
            if failure.kind in ("external-divergence", "external-error")
            else None
        )
        outcome.corpus_path = write_corpus_file(
            case,
            corpus_dir,
            failure=failure,
            oracle=oracle,
            logic=getattr(runner, "logic", "3vl"),
        )
    return outcome


__all__ = [
    "ALWAYS_STRATEGIES",
    "DEFAULT_STRATEGIES",
    "GUARDED_STRATEGIES",
    "ORACLE",
    "DatabaseSpec",
    "DifferentialRunner",
    "Failure",
    "FuzzCase",
    "FuzzConfig",
    "FuzzOutcome",
    "FuzzReport",
    "MiscountingSpanStrategy",
    "MutatedLinkStrategy",
    "QueryGenerator",
    "TableSpec",
    "applicable_strategies",
    "case_digest",
    "case_rng",
    "corpus_module_source",
    "generate_case",
    "is_interesting",
    "mutate_first_link",
    "random_database_spec",
    "run_fuzz",
    "shrink_case",
    "write_corpus_file",
]
