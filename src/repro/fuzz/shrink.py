"""Minimization of failing (query, database) pairs.

Two alternating passes run to a fixpoint:

* **data shrinking** — per table, a ddmin-style sweep that removes
  contiguous chunks of rows (halves, quarters, ... down to single rows)
  while the failure persists;
* **query shrinking** — structural simplifications of the AST: drop a
  WHERE conjunct anywhere in the block tree (which can delete a whole
  subquery branch and reduce nesting depth), drop DISTINCT, drop a
  trailing SELECT item, drop the root's second FROM table when no
  predicate references it.

The caller supplies the *interesting-ness* predicate (usually "the
differential runner still reports a disagreement/error"), so the same
machinery minimizes genuine strategy bugs and injected self-test bugs
alike.  Everything is deterministic — no randomness — so a minimized
case is stable across runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..sql import ast as A
from ..errors import InvalidArgumentError
from .datagen import DatabaseSpec
from .runner import Failure, FuzzCase

#: Failure kinds worth preserving while shrinking.  A candidate that
#: merely fails to compile is *not* interesting: it means the
#: simplification left dangling references, not that the engine is wrong.
#: External-oracle kinds shrink like internal ones: the check re-loads
#: the candidate database into the engine, so ddmin stays sound.
INTERESTING_KINDS = (
    "disagreement",
    "error",
    "metrics",
    "trace",
    "external-divergence",
    "external-error",
)


def is_interesting(failure: Optional[Failure]) -> bool:
    return failure is not None and failure.kind in INTERESTING_KINDS


def shrink_case(
    case: FuzzCase,
    check: Callable[[FuzzCase], Optional[Failure]],
    max_passes: int = 8,
) -> Tuple[FuzzCase, Failure]:
    """Minimize *case* while ``check`` keeps reporting an interesting
    failure.  Returns the smallest case found and its failure.

    *check* runs the candidate and returns the failure (or None); the
    original case must itself be interesting.
    """
    failure = check(case)
    if not is_interesting(failure):
        raise InvalidArgumentError("shrink_case needs a case that currently fails")
    assert failure is not None

    for _ in range(max_passes):
        smaller, failure, progressed = _one_pass(case, check, failure)
        case = smaller
        if not progressed:
            break
    return case, failure


def _one_pass(
    case: FuzzCase,
    check: Callable[[FuzzCase], Optional[Failure]],
    failure: Failure,
) -> Tuple[FuzzCase, Failure, bool]:
    progressed = False

    # -- data: ddmin over each table's rows --------------------------- #
    for table in case.db_spec.tables:
        rows = list(table.rows)
        chunk = max(1, len(rows) // 2)
        while chunk >= 1 and rows:
            start = 0
            while start < len(rows):
                candidate_rows = rows[:start] + rows[start + chunk:]
                candidate = replace(
                    case, db_spec=case.db_spec.with_rows(table.name, candidate_rows)
                )
                result = check(candidate)
                if is_interesting(result):
                    assert result is not None
                    rows = candidate_rows
                    case = candidate
                    failure = result
                    progressed = True
                    # stay at the same start: the next chunk shifted in
                else:
                    start += chunk
            chunk //= 2

    # -- query: try structural simplifications to a fixpoint ---------- #
    simplified = True
    while simplified:
        simplified = False
        for candidate_stmt in _stmt_variants(case.stmt):
            candidate = replace(case, stmt=candidate_stmt)
            result = check(candidate)
            if is_interesting(result):
                assert result is not None
                case = candidate
                failure = result
                progressed = True
                simplified = True
                break

    return case, failure, progressed


# ---------------------------------------------------------------------- #
# AST simplification candidates
# ---------------------------------------------------------------------- #


def _stmt_variants(stmt: A.SelectStmt) -> Iterator[A.SelectStmt]:
    """Strictly smaller variants of *stmt*, most aggressive first."""
    conjuncts = _conjuncts(stmt.where)

    # drop one conjunct entirely (dropping a subquery conjunct removes a
    # whole branch of the block tree)
    for i in range(len(conjuncts)):
        yield replace(
            stmt, where=_rejoin(conjuncts[:i] + conjuncts[i + 1:])
        )

    # recurse: simplify the subquery inside a subquery-bearing conjunct
    for i, conjunct in enumerate(conjuncts):
        subquery = _subquery_of(conjunct)
        if subquery is None:
            continue
        for sub_variant in _stmt_variants(subquery):
            new_conjunct = _with_subquery(conjunct, sub_variant)
            yield replace(
                stmt,
                where=_rejoin(
                    conjuncts[:i] + [new_conjunct] + conjuncts[i + 1:]
                ),
            )

    if stmt.distinct:
        yield replace(stmt, distinct=False)

    # drop a trailing SELECT item (keep at least one)
    if len(stmt.items) > 1:
        yield replace(stmt, items=stmt.items[:-1])

    # drop the second FROM table if nothing else references its alias
    if len(stmt.tables) > 1:
        victim = stmt.tables[-1]
        alias = victim.effective_alias
        trimmed = replace(stmt, tables=stmt.tables[:-1])
        if alias not in _referenced_tables(trimmed):
            yield trimmed


def _conjuncts(pred: Optional[A.Predicate]) -> List[A.Predicate]:
    if pred is None:
        return []
    if isinstance(pred, A.AndPred):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _rejoin(conjuncts: Sequence[A.Predicate]) -> Optional[A.Predicate]:
    if not conjuncts:
        return None
    out = conjuncts[0]
    for pred in conjuncts[1:]:
        out = A.AndPred(out, pred)
    return out


def _subquery_of(pred: A.Predicate) -> Optional[A.SelectStmt]:
    if isinstance(pred, (A.ExistsPred, A.InSubqueryPred)):
        return pred.subquery
    if isinstance(pred, A.QuantifiedPred):
        return pred.subquery
    return None


def _with_subquery(pred: A.Predicate, subquery: A.SelectStmt) -> A.Predicate:
    assert isinstance(pred, (A.ExistsPred, A.InSubqueryPred, A.QuantifiedPred))
    return replace(pred, subquery=subquery)


def _referenced_tables(stmt: A.SelectStmt) -> set:
    """Every table qualifier mentioned anywhere in *stmt* (this block and
    all nested subqueries)."""
    refs: set = set()

    def value(expr: A.ValueExpr) -> None:
        if isinstance(expr, A.ColumnRef) and expr.table:
            refs.add(expr.table)
        elif isinstance(expr, A.BinaryArith):
            value(expr.left)
            value(expr.right)

    def pred(p: Optional[A.Predicate]) -> None:
        if p is None:
            return
        if isinstance(p, (A.AndPred, A.OrPred)):
            pred(p.left)
            pred(p.right)
        elif isinstance(p, A.NotPred):
            pred(p.operand)
        elif isinstance(p, A.ComparisonPred):
            value(p.left)
            value(p.right)
        elif isinstance(p, A.BetweenPred):
            value(p.operand)
            value(p.low)
            value(p.high)
        elif isinstance(p, A.IsNullPred):
            value(p.operand)
        elif isinstance(p, A.InListPred):
            value(p.operand)
            for item in p.items:
                value(item)
        elif isinstance(p, A.ExistsPred):
            select(p.subquery)
        elif isinstance(p, A.InSubqueryPred):
            value(p.operand)
            select(p.subquery)
        elif isinstance(p, A.QuantifiedPred):
            value(p.operand)
            select(p.subquery)

    def select(s: A.SelectStmt) -> None:
        for item in s.items:
            if item.expr is not None and item.expr.table:
                refs.add(item.expr.table)
        pred(s.where)

    select(stmt)
    return refs
