"""Freezing fuzz cases as self-contained pytest regressions.

A corpus file needs nothing but ``repro`` itself: it embeds the SQL
text, rebuilds the database from literal rows, and asserts that every
(applicable) strategy agrees with the nested-iteration oracle.  Checked
into ``tests/fuzz_corpus/``, these run under plain ``pytest`` with no
fuzzer involvement — the corpus is the fuzzer's long-term memory of
every bug it ever caught, plus a seeded set of representative cases.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional, Sequence

from ..engine.types import is_null
from ..errors import ReproError
from ..sql.analyzer import compile_sql
from .runner import (
    ALWAYS_STRATEGIES,
    GUARDED_STRATEGIES,
    Failure,
    FuzzCase,
    _applies,
)
from ..core.planner import make_strategy

_TEMPLATE = '''"""{title}

{provenance}
Replay:  PYTHONPATH=src python -m repro fuzz --seed {seed} --iterations {replay_iterations}
"""

import repro
from repro.engine import NULL, Column, Database

SQL = (
{sql_literal}
)

STRATEGIES = [
{strategies}
]


def build_db():
    db = Database()
{tables}
    return db


LOGIC = "{logic}"


def test_all_strategies_agree_with_oracle():
    from repro.engine.logic import logic_mode

    db = build_db()
    query = repro.compile_sql(SQL, db)
    with logic_mode(LOGIC):
        oracle = repro.execute(query, db, strategy="nested-iteration").sorted()
        for strategy in STRATEGIES:
            result = repro.execute(query, db, strategy=strategy).sorted()
            assert result == oracle, f"{{strategy}} disagrees with the oracle"
'''

_EXTERNAL_TEMPLATE = '''

def test_agrees_with_external_oracle():
    import pytest

    from repro.oracle import cross_check, engine_available

    engine = "{engine}"
    if not engine_available(engine):
        pytest.skip(f"{{engine}} not installed")
    db = build_db()
    for report in cross_check(db, SQL, engine=engine, strategies=STRATEGIES):
        assert report.acceptable, report.describe()
'''


def _pyvalue(value: object) -> str:
    if is_null(value):
        return "NULL"
    return repr(value)


def _sql_literal(sql: str, width: int = 68) -> str:
    """The SQL string as an implicitly concatenated literal block."""
    words = sql.split(" ")
    lines: list = []
    current = ""
    for word in words:
        if current and len(current) + 1 + len(word) > width:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}" if current else word
    if current:
        lines.append(current)
    out = []
    for i, line in enumerate(lines):
        trailing = " " if i < len(lines) - 1 else ""
        out.append(f'    "{line}{trailing}"')
    return "\n".join(out)


def applicable_strategies(case: FuzzCase) -> list:
    """Strategy names that accept this case (guarded ones filtered)."""
    db = case.db_spec.build()
    query = compile_sql(case.sql, db)
    names = list(ALWAYS_STRATEGIES)
    for name in GUARDED_STRATEGIES:
        if _applies(make_strategy(name), query, db):
            names.append(name)
    return names


def corpus_module_source(
    case: FuzzCase,
    failure: Optional[Failure] = None,
    title: Optional[str] = None,
    strategies: Optional[Sequence[str]] = None,
    oracle: Optional[str] = None,
    logic: str = "3vl",
) -> str:
    """Render *case* as the source of a self-contained pytest module.

    When *oracle* names an external engine ("sqlite"/"duckdb") the module
    gains a second test that replays the case through
    :func:`repro.oracle.cross_check` — skipped when the engine's package
    is missing, so a DuckDB-found divergence still runs everywhere.
    """
    if strategies is None:
        strategies = applicable_strategies(case)
    if title is None:
        title = "Fuzzer regression (minimized by repro.fuzz)."
    if failure is not None:
        provenance = (
            f"Origin: strategy {failure.strategy!r} {failure.kind} — "
            f"{failure.detail}\n"
            f"Found at seed={case.seed} iteration={case.iteration}, then "
            "minimized.\n"
        )
        if failure.trace_text:
            provenance += (
                "\nPer-operator traces at the minimized case:\n"
                + failure.trace_text + "\n"
            )
    else:
        provenance = (
            f"Deterministic generator output (seed={case.seed} "
            f"iteration={case.iteration}), checked in as a corpus seed.\n"
        )

    table_lines = []
    for table in case.db_spec.tables:
        rows = ",\n".join(
            "            (" + ", ".join(_pyvalue(v) for v in row) + ")"
            for row in table.rows
        )
        rows_block = f"[\n{rows},\n        ]" if table.rows else "[]"
        table_lines.append(
            f'    db.create_table(\n'
            f'        "{table.name}",\n'
            f'        [Column("k", not_null=True), Column("a"), Column("b")],\n'
            f"        {rows_block},\n"
            f'        primary_key="k",\n'
            f"    )"
        )

    source = _TEMPLATE.format(
        title=title,
        provenance=provenance,
        seed=case.seed,
        replay_iterations=case.iteration + 1,
        sql_literal=_sql_literal(case.sql),
        strategies="\n".join(f'    "{name}",' for name in strategies),
        tables="\n".join(table_lines),
        logic=logic,
    )
    if oracle not in (None, "internal"):
        source += _EXTERNAL_TEMPLATE.format(engine=oracle)
    return source


def case_digest(case: FuzzCase) -> str:
    payload = case.sql + "|" + repr(
        [(t.name, t.rows) for t in case.db_spec.tables]
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:10]


def write_corpus_file(
    case: FuzzCase,
    directory: str,
    failure: Optional[Failure] = None,
    name: Optional[str] = None,
    title: Optional[str] = None,
    strategies: Optional[Sequence[str]] = None,
    oracle: Optional[str] = None,
    logic: str = "3vl",
) -> str:
    """Write the regression module under *directory*; returns its path.

    The directory is created (with an ``__init__.py`` so pytest package
    collection keeps working) if it does not exist.
    """
    os.makedirs(directory, exist_ok=True)
    init_path = os.path.join(directory, "__init__.py")
    if not os.path.exists(init_path):
        with open(init_path, "w") as handle:
            handle.write('"""Checked-in fuzzer regressions (repro.fuzz)."""\n')
    if name is None:
        name = f"test_fuzz_{case_digest(case)}.py"
    if not name.startswith("test_"):
        raise ReproError(f"corpus file name {name!r} must start with 'test_'")
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(
            corpus_module_source(
                case,
                failure=failure,
                title=title,
                strategies=strategies,
                oracle=oracle,
                logic=logic,
            )
        )
    return path
