"""Random schema/data generation for the differential fuzzer.

A fuzzed database is a handful of structurally identical tables
``t0 .. tN``, each ``(k, a, b)`` with ``k`` an INTEGER NOT NULL primary
key and ``a`` / ``b`` nullable integers drawn from a deliberately tiny
domain so that equality joins, quantified comparisons and duplicates all
actually fire.  The generator biases toward the regimes the paper's
correctness argument hinges on:

* **empty tables** — subqueries over them produce ``{B} = ∅``, the case
  the pk-is-NULL convention exists to recognise;
* **NULL-only value columns** — a non-empty set containing *only* NULL,
  which classical antijoin rewrites confuse with the empty set;
* **NULL correlation keys** — correlated predicates whose outer or inner
  side is NULL, so the correlation comparison itself is UNKNOWN.

Databases are described by an immutable :class:`DatabaseSpec` (plain
data, no engine objects) so that the shrinker can derive smaller
candidate databases and the corpus writer can serialize failing cases as
self-contained Python source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from ..engine.catalog import Database
from ..engine.schema import Column
from ..engine.types import NULL, SqlValue, is_null

#: Every fuzz table has this layout: pk + two nullable value columns.
PK_COLUMN = "k"
VALUE_COLUMNS = ("a", "b")
ALL_COLUMNS = (PK_COLUMN,) + VALUE_COLUMNS

#: Probability that a table is generated empty / with NULL-only values.
EMPTY_TABLE_RATE = 0.08
NULL_ONLY_TABLE_RATE = 0.08


@dataclass(frozen=True)
class TableSpec:
    """One fuzz table: a name plus its ``(k, a, b)`` rows."""

    name: str
    rows: Tuple[Tuple[SqlValue, ...], ...]

    def create_in(self, db: Database) -> None:
        db.create_table(
            self.name,
            [
                Column(PK_COLUMN, not_null=True),
                Column(VALUE_COLUMNS[0]),
                Column(VALUE_COLUMNS[1]),
            ],
            self.rows,
            primary_key=PK_COLUMN,
        )


@dataclass(frozen=True)
class DatabaseSpec:
    """An immutable description of a whole fuzz database."""

    tables: Tuple[TableSpec, ...]

    def build(self) -> Database:
        """Materialize the spec as a fresh engine :class:`Database`."""
        db = Database()
        for table in self.tables:
            table.create_in(db)
        return db

    def with_rows(self, name: str, rows: Sequence[Tuple[SqlValue, ...]]) -> "DatabaseSpec":
        """A copy with one table's rows replaced (used by the shrinker)."""
        return DatabaseSpec(
            tuple(
                replace(t, rows=tuple(rows)) if t.name == name else t
                for t in self.tables
            )
        )

    @property
    def total_rows(self) -> int:
        return sum(len(t.rows) for t in self.tables)

    def describe(self) -> str:
        cells = []
        for t in self.tables:
            nulls = sum(1 for row in t.rows for v in row if is_null(v))
            cells.append(f"{t.name}[{len(t.rows)} rows, {nulls} nulls]")
        return " ".join(cells)


def random_database_spec(
    rng: random.Random,
    n_tables: int = 4,
    max_rows: int = 8,
    null_rate: float = 0.25,
    domain: Tuple[int, int] = (-3, 3),
) -> DatabaseSpec:
    """Generate a random :class:`DatabaseSpec`.

    *null_rate* is the per-cell probability of NULL in the value columns;
    primary keys are always sequential non-NULL integers.
    """
    tables: List[TableSpec] = []
    for i in range(n_tables):
        shape = rng.random()
        if shape < EMPTY_TABLE_RATE:
            rows: Tuple[Tuple[SqlValue, ...], ...] = ()
        else:
            null_only = shape < EMPTY_TABLE_RATE + NULL_ONLY_TABLE_RATE

            def cell() -> SqlValue:
                if null_only or rng.random() < null_rate:
                    return NULL
                return rng.randint(domain[0], domain[1])

            rows = tuple(
                (k, cell(), cell()) for k in range(rng.randint(1, max_rows))
            )
        tables.append(TableSpec(name=f"t{i}", rows=rows))
    return DatabaseSpec(tuple(tables))
