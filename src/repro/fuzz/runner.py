"""The differential oracle: every strategy vs. tuple-iteration semantics.

For each generated (query, database) pair the runner executes every
registered strategy and compares its result — as a bag, order-ignored —
against the ``nested-iteration`` oracle, which implements SQL semantics
by direct per-tuple evaluation.  Strategies with applicability guards
(bottom-up linear evaluation, the positive rewrite, the classical
unnesting and aggregate-rewrite baselines) are checked only on the
queries they accept, mirroring how the auto planner would route them.

Each execution also runs under a fresh metrics scope and is checked
against the engine's counter invariants (non-negative counters,
``rows_produced`` = result cardinality) so a strategy that silently
miscounts work is flagged even when its rows are right.  Executions
additionally run under a tracing scope (``check_traces``): the span
tree's structural invariants — cardinality contracts, pull-model row
accounting, Metrics reconciliation — must hold on every random query,
so an operator that miscounts its rows is caught even when the result
values match the oracle.

The runner reports the *first* failing (case, strategy) pair; the
shrinker then minimizes it and the corpus writer freezes it as a
self-contained pytest regression under ``tests/fuzz_corpus/`` — with
the per-operator traces of the oracle and the failing strategy attached
to the frozen failure's provenance.
"""

from __future__ import annotations

import copy
import tempfile
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.blocks import NestedQuery
from ..core.planner import make_strategy, run
from ..engine.catalog import Database
from ..engine.governor import ResourceGovernor, active_fault
from ..engine.logic import logic_mode, validate_logic
from ..engine.metrics import collect
from ..engine.trace import (
    Trace,
    reconcile_with_metrics,
    render_trace,
    trace_invariant_violations,
    tracing,
)
from ..engine.relation import Relation
from ..engine.types import negate_op
from ..errors import ReproError, ResourceExhaustedError, SpillError
from ..sql import ast as A
from ..sql.analyzer import compile_sql
from ..sql.unparse import render_sql
from .datagen import DatabaseSpec, random_database_spec
from .generator import FuzzConfig, QueryGenerator, case_rng

#: The correctness oracle every strategy is compared against.
ORACLE = "nested-iteration"

#: Strategies that accept every query in the generator's subset.
ALWAYS_STRATEGIES = (
    "nested-relational",
    "nested-relational-sorted",
    "nested-relational-vectorized",
    "nested-relational-parallel",
    "nested-relational-optimized",
    "system-a-native",
    "auto",
)

#: Strategies with an ``applicable`` guard, checked only when they apply.
GUARDED_STRATEGIES = (
    "nested-relational-bottomup",
    "nested-relational-positive-rewrite",
    "classical-unnesting",
    "count-rewrite",
    "boolean-aggregate",
    "aggregate-rewrite",
)

DEFAULT_STRATEGIES = ALWAYS_STRATEGIES + GUARDED_STRATEGIES


@dataclass(frozen=True)
class FuzzCase:
    """One generated (query, database) pair plus its provenance."""

    stmt: A.SelectStmt
    db_spec: DatabaseSpec
    seed: int = 0
    iteration: int = 0

    @property
    def sql(self) -> str:
        return render_sql(self.stmt)

    def describe(self) -> str:
        return f"seed={self.seed} iteration={self.iteration}\n  {self.sql}\n  {self.db_spec.describe()}"


@dataclass
class Failure:
    """A strategy disagreeing with the oracle (or crashing, or breaking a
    metrics or trace invariant, or diverging from an external engine) on
    one case."""

    case: FuzzCase
    strategy: str
    # "disagreement" | "error" | "metrics" | "trace" | "planner"
    # | "compile-error" | "external-divergence" | "external-error"
    kind: str
    detail: str
    expected: Optional[Relation] = None
    actual: Optional[Relation] = None
    #: rendered per-operator traces of the oracle and the failing
    #: strategy (timings off), attached before a corpus file is frozen
    trace_text: Optional[str] = None

    def describe(self) -> str:
        lines = [
            f"strategy {self.strategy!r}: {self.kind}",
            f"  {self.detail}",
            f"  case: {self.case.describe()}",
        ]
        if self.expected is not None:
            lines.append(f"  oracle rows:   {sorted_rows(self.expected)}")
        if self.actual is not None:
            lines.append(f"  strategy rows: {sorted_rows(self.actual)}")
        if self.trace_text:
            lines.append("  " + self.trace_text.replace("\n", "\n  "))
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of a whole fuzzing run."""

    iterations: int = 0
    cases_run: int = 0
    strategy_checks: int = 0
    skipped_inapplicable: int = 0
    #: cross-engine comparisons run (``--oracle=sqlite|duckdb``)
    external_checks: int = 0
    #: external disagreements matched by the known-divergence registry
    known_divergences: int = 0
    failures: List[Failure] = field(default_factory=list)
    elapsed: float = 0.0
    operator_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        ops = " ".join(
            f"{op}={n}" for op, n in sorted(self.operator_histogram.items())
        )
        external = ""
        if self.external_checks:
            external = (
                f", {self.external_checks} external oracle check(s)"
                + (
                    f" ({self.known_divergences} known divergence(s))"
                    if self.known_divergences
                    else ""
                )
            )
        return (
            f"{verdict}: {self.cases_run} case(s), "
            f"{self.strategy_checks} strategy check(s), "
            f"{self.skipped_inapplicable} inapplicable skip(s)"
            f"{external} "
            f"in {self.elapsed:.1f}s\n  linking operators seen: {ops}"
        )


def sorted_rows(relation: Relation) -> List[tuple]:
    return relation.sorted().rows


def _applies(impl: object, query: NestedQuery, db: Database) -> bool:
    """Whether *impl* accepts (query, db) — the same dual-protocol
    normalization the cost-based planner uses, so the fuzzer's guarded
    skips mirror the planner's candidate enumeration exactly."""
    from ..core.optimizer import strategy_applicable

    return strategy_applicable(impl, query, db)


def _planner_violations(trace: Trace) -> List[str]:
    """Check the planner-choice invariants on an ``"auto"`` execution.

    Every traced ``auto`` run must carry exactly one ``kind='planner'``
    span under the root, enumerating at least two costed candidates
    (the registry always has multiple universally applicable
    strategies), with exactly one candidate marked chosen, that
    candidate priced no higher than any other, and the root span
    executing the very strategy the planner chose.
    """
    out: List[str] = []
    roots = [r for r in trace.roots if r.kind == "root"]
    planner_spans = [
        span for root in roots for span in root.children
        if span.kind == "planner"
    ]
    if len(planner_spans) != 1:
        return [
            f"expected exactly one planner span under the root, "
            f"found {len(planner_spans)}"
        ]
    span = planner_spans[0]
    chosen = span.attrs.get("chosen")
    if not chosen:
        out.append("planner span has no 'chosen' attribute")
    candidates = [
        c for c in span.children if c.name.startswith("candidate[")
    ]
    if len(candidates) < 2:
        out.append(
            f"planner enumerated {len(candidates)} candidate(s); expected >= 2"
        )
    flagged = [
        c for c in candidates if c.attrs.get("chosen") in (True, "True")
    ]
    if len(flagged) != 1:
        out.append(
            f"{len(flagged)} candidate(s) marked chosen; expected exactly 1"
        )
    elif candidates:
        winner = flagged[0]
        if chosen and winner.name != f"candidate[{chosen}]":
            out.append(
                f"planner chose {chosen!r} but {winner.name} is flagged"
            )
        try:
            costs = [float(c.attrs["est_cost"]) for c in candidates]
            winner_cost = float(winner.attrs["est_cost"])
        except (KeyError, ValueError):
            out.append("candidate spans are missing parseable est_cost attrs")
        else:
            if winner_cost > min(costs) + 1e-9:
                out.append(
                    f"chosen candidate costs {winner_cost} but the cheapest "
                    f"enumerated candidate costs {min(costs)}"
                )
    for root in roots:
        executed = root.attrs.get("strategy")
        if chosen and executed is not None and executed != chosen:
            out.append(
                f"root span executed {executed!r} but the planner "
                f"chose {chosen!r}"
            )
    return out


class DifferentialRunner:
    """Executes strategies against the oracle, case by case."""

    def __init__(
        self,
        strategies: Optional[Sequence[str]] = None,
        extra_strategies: Sequence[object] = (),
        check_metrics: bool = True,
        check_traces: bool = True,
        oracle: Optional[str] = None,
        logic: str = "3vl",
        memory_limit_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
    ):
        self.strategies = tuple(strategies or DEFAULT_STRATEGIES)
        #: predicate semantics every internal execution runs under.
        #: External engines always evaluate standard 3VL, so under
        #: ``logic="2vl"`` the external cross-check grounds a separately
        #: computed 3VL oracle result instead of the 2VL one.
        self.logic = validate_logic(logic)
        #: objects with ``name`` and ``execute(query, db)`` — used to
        #: inject deliberately broken strategies for self-tests.
        self.extra_strategies = tuple(extra_strategies)
        self.check_metrics = check_metrics
        #: run every execution under a tracing scope and enforce the
        #: span-tree invariants (contracts, row accounting, Metrics
        #: reconciliation) on top of the differential check.
        self.check_traces = check_traces
        #: external engine to cross-check the internal oracle against
        #: ("sqlite" / "duckdb"); None or "internal" keeps the classic
        #: strategies-vs-nested-iteration mode only.
        self.oracle = None if oracle in (None, "internal") else oracle
        #: tiny-memory-budget mode: every *checked* strategy runs under a
        #: spilling governor with this budget, exercising the Grace
        #: partitioning paths on random queries while the ungoverned
        #: oracle stays the ground truth.  A strategy whose non-spillable
        #: sites legitimately exhaust the budget is skipped, not failed.
        self.memory_limit_mb = memory_limit_mb
        self.spill_dir = spill_dir
        self.last_report: Optional[FuzzReport] = None

    def _ensure_spill_dir(self) -> str:
        if self.spill_dir is None:
            self.spill_dir = tempfile.mkdtemp(prefix="repro-fuzz-spill-")
        return self.spill_dir

    # ------------------------------------------------------------------ #
    # one case
    # ------------------------------------------------------------------ #

    def check_case(
        self, case: FuzzCase, report: Optional[FuzzReport] = None
    ) -> Optional[Failure]:
        """Run every strategy on *case*; the first failure, or None.

        The query is compiled from its rendered SQL text — the exact
        artifact a corpus file replays — so unparser or parser drift
        surfaces here rather than in a checked-in regression.  The whole
        case runs under the runner's logic mode.
        """
        with logic_mode(self.logic):
            return self._check_case(case, report)

    def _check_case(
        self, case: FuzzCase, report: Optional[FuzzReport]
    ) -> Optional[Failure]:
        db = case.db_spec.build()
        try:
            query = compile_sql(case.sql, db)
        except ReproError as exc:
            return Failure(
                case, "<compile>", "compile-error",
                f"generated SQL failed to compile: {exc}",
            )

        oracle_failure, expected = self._run_one(case, query, db, ORACLE)
        if oracle_failure is not None:
            return oracle_failure
        assert expected is not None

        if self.oracle is not None:
            grounded = expected
            if self.logic != "3vl":
                # external engines are 3VL: ground their comparison in a
                # 3VL oracle run, keeping the 2VL differential leg intact
                with logic_mode("3vl"):
                    failure, grounded = self._run_one(case, query, db, ORACLE)
                if failure is not None:
                    return failure
                assert grounded is not None
            failure = self._check_external(case, db, grounded, report)
            if failure is not None:
                return failure

        for name in self.strategies:
            if name in GUARDED_STRATEGIES and not _applies(
                make_strategy(name), query, db
            ):
                if report is not None:
                    report.skipped_inapplicable += 1
                continue
            failure = self._check_one(case, query, db, name, expected, report)
            if failure is not None:
                return failure

        for impl in self.extra_strategies:
            name = getattr(impl, "name", type(impl).__name__)
            failure = self._check_one(
                case, query, db, name, expected, report, impl=impl
            )
            if failure is not None:
                return failure
        return None

    def _check_one(
        self,
        case: FuzzCase,
        query: NestedQuery,
        db: Database,
        name: str,
        expected: Relation,
        report: Optional[FuzzReport],
        impl: Optional[object] = None,
    ) -> Optional[Failure]:
        failure, result = self._run_one(
            case, query, db, name, impl=impl, check_produced=impl is None
        )
        if failure is not None:
            return failure
        if result is None:  # accepted budget outcome: nothing to compare
            if report is not None:
                report.skipped_inapplicable += 1
            return None
        if report is not None:
            report.strategy_checks += 1
        if result != expected:
            return Failure(
                case, name, "disagreement",
                f"{len(result)} row(s) vs oracle's {len(expected)}",
                expected=expected, actual=result,
            )
        return None

    def _check_external(
        self,
        case: FuzzCase,
        db: Database,
        expected: Relation,
        report: Optional[FuzzReport],
    ) -> Optional[Failure]:
        """Cross-check the internal oracle's rows against ``self.oracle``.

        The internal strategies are differentially checked against
        ``nested-iteration`` below, so grounding *that one* result in a
        real engine transitively grounds every strategy that matches it.
        A divergence the known-divergence registry explains is counted
        and skipped; anything else becomes an ``external-divergence``
        failure that shrinks into the corpus like any other.
        """
        from ..oracle.adapter import make_adapter
        from ..oracle.diff import diff_bags
        from ..oracle.dialect import comparable
        from ..oracle.known import find_known
        from ..errors import OracleError, OracleUnsupportedError

        label = f"oracle:{self.oracle}"
        try:
            comparable(case.stmt)
        except OracleUnsupportedError:
            if report is not None:
                report.skipped_inapplicable += 1
            return None
        try:
            with make_adapter(self.oracle, db) as adapter:
                rows, dialect_sql, _ = adapter.execute(case.stmt)
        except OracleError as exc:
            return Failure(
                case, label, "external-error",
                f"{self.oracle} rejected the dialect SQL: {exc}",
            )
        if report is not None:
            report.external_checks += 1
        diff = diff_bags(expected.rows, rows)
        if diff is None:
            return None
        known = find_known(case.sql, self.oracle, case.stmt)
        if known is not None:
            if report is not None:
                report.known_divergences += 1
            return None
        return Failure(
            case, label, "external-divergence",
            f"{diff.describe()}\n  dialect SQL: {dialect_sql}",
            expected=expected,
        )

    def _run_one(
        self,
        case: FuzzCase,
        query: NestedQuery,
        db: Database,
        name: str,
        impl: Optional[object] = None,
        check_produced: bool = True,
    ) -> Tuple[Optional[Failure], Optional[Relation]]:
        """Execute one strategy under fresh metrics and tracing scopes."""
        trace: Optional[Trace] = None
        try:
            with collect() as metrics:
                if not self.check_traces:
                    result = self._execute(query, db, name, impl)
                else:
                    with tracing() as trace:
                        result = self._execute(query, db, name, impl)
        except ReproError as exc:
            if self._budget_skip(exc, name):
                return None, None
            return (
                Failure(case, name, "error", f"raised {type(exc).__name__}: {exc}"),
                None,
            )
        if self.check_metrics:
            violations = metrics.invariant_violations(
                result_cardinality=len(result) if check_produced else None
            )
            if violations:
                return (
                    Failure(case, name, "metrics", "; ".join(violations)),
                    None,
                )
        if trace is not None:
            violations = trace_invariant_violations(
                trace,
                result_cardinality=len(result) if check_produced else None,
            )
            if impl is None:
                # extra strategies may do work outside the planner's root
                # span, so exact Metrics reconciliation only holds for
                # direct planner runs.
                violations.extend(
                    reconcile_with_metrics(trace, metrics.snapshot())
                )
            if violations:
                return (
                    Failure(case, name, "trace", "; ".join(violations[:8])),
                    None,
                )
            if impl is None and name == "auto":
                violations = _planner_violations(trace)
                if violations:
                    return (
                        Failure(case, name, "planner", "; ".join(violations)),
                        None,
                    )
        return None, result

    def _execute(
        self, query: NestedQuery, db: Database, name: str, impl: Optional[object]
    ) -> Relation:
        if impl is not None:
            return impl.execute(query, db)
        kwargs: Dict[str, object] = {}
        if active_fault() is not None:
            # CI's fault-injection job rotates REPRO_FAULT while running
            # this same differential sweep: injected worker crashes must
            # degrade to the sequential backend and still match the
            # oracle, so every fault-mode run is governed.
            kwargs["degrade"] = "sequential"
        if self.memory_limit_mb is not None and name != ORACLE:
            # the oracle stays ungoverned: ground truth must always
            # complete, and a budget on it would only mask strategy bugs
            kwargs["memory_limit_mb"] = self.memory_limit_mb
            kwargs["spill_dir"] = self._ensure_spill_dir()
        governor = ResourceGovernor(**kwargs) if kwargs else None
        return run(query, db, strategy=name, governor=governor)

    def _budget_skip(self, exc: ReproError, name: str) -> bool:
        """Whether *exc* is an accepted outcome of budget-mode governance.

        Two typed errors are legitimate under a tiny budget rather than
        strategy bugs: an injected ``REPRO_FAULT=spill_io`` write failure
        surfacing as :class:`SpillError`, and a non-spillable site
        (table materialization, object columns) correctly exhausting the
        budget.  Any other error — including a SpillError with no fault
        injected — still fails the case.
        """
        if self.memory_limit_mb is None or name == ORACLE:
            return False
        if isinstance(exc, SpillError):
            return active_fault() == "spill_io"
        return isinstance(exc, ResourceExhaustedError)

    # ------------------------------------------------------------------ #
    # trace provenance
    # ------------------------------------------------------------------ #

    def attach_trace_text(self, failure: Failure) -> Failure:
        """Re-run the oracle and the failing strategy under tracing and
        attach both rendered span trees (timings off, so the text is
        deterministic) to *failure* — the per-operator provenance the
        corpus writer freezes alongside a minimized regression."""
        if failure.kind == "compile-error":
            return failure
        case = failure.case
        db = case.db_spec.build()
        try:
            query = compile_sql(case.sql, db)
        except ReproError:
            return failure
        impls = {
            getattr(i, "name", type(i).__name__): i
            for i in self.extra_strategies
        }
        sections: List[str] = []
        for label, name in (("oracle", ORACLE), ("strategy", failure.strategy)):
            if label == "strategy" and name == ORACLE:
                continue  # the oracle itself failed; one trace suffices
            if label == "strategy" and failure.strategy.startswith("oracle:"):
                # external-divergence / external-error: the "strategy" is a
                # real engine — nothing of ours to trace on that side.
                continue
            try:
                with logic_mode(self.logic), tracing() as trace:
                    self._execute(query, db, name, impls.get(name))
            except ReproError as exc:
                sections.append(
                    f"{label} {name!r} trace: raised "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            sections.append(
                f"{label} {name!r} trace:\n"
                + render_trace(trace, timings=False)
            )
        failure.trace_text = "\n".join(sections)
        return failure

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        config: FuzzConfig,
        fail_fast: bool = True,
        progress: Optional[Callable[[int, FuzzReport], None]] = None,
    ) -> FuzzReport:
        """Fuzz for ``config.iterations`` cases; stop at the first failure
        unless *fail_fast* is False."""
        generator = QueryGenerator(config)
        report = FuzzReport(iterations=config.iterations)
        start = time.perf_counter()
        for i in range(config.iterations):
            case = generate_case(config, i, generator)
            _count_operators(case.stmt, report.operator_histogram)
            failure = self.check_case(case, report)
            report.cases_run += 1
            if failure is not None:
                report.failures.append(failure)
                if fail_fast:
                    break
            if progress is not None:
                progress(i, report)
        report.elapsed = time.perf_counter() - start
        self.last_report = report
        return report


def generate_case(
    config: FuzzConfig, iteration: int, generator: Optional[QueryGenerator] = None
) -> FuzzCase:
    """Deterministically generate case *iteration* of a seeded run."""
    generator = generator or QueryGenerator(config)
    rng = case_rng(config.seed, iteration)
    spec = random_database_spec(
        rng,
        n_tables=config.n_tables,
        max_rows=config.max_rows,
        null_rate=config.null_rate,
        domain=config.domain,
    )
    stmt = generator.generate(rng, spec)
    return FuzzCase(stmt=stmt, db_spec=spec, seed=config.seed, iteration=iteration)


def _count_operators(stmt: A.SelectStmt, histogram: Dict[str, int]) -> None:
    def bump(key: str) -> None:
        histogram[key] = histogram.get(key, 0) + 1

    def visit_sub(sub: A.SelectStmt) -> None:
        if sub.group_by:
            bump("group-by-subquery")
        visit(sub.where)
        visit(sub.having)

    def visit(pred: Optional[A.Predicate]) -> None:
        if pred is None:
            return
        if isinstance(pred, (A.AndPred, A.OrPred)):
            visit(pred.left)
            visit(pred.right)
        elif isinstance(pred, A.NotPred):
            visit(pred.operand)
        elif isinstance(pred, A.ExistsPred):
            bump("not_exists" if pred.negated else "exists")
            visit_sub(pred.subquery)
        elif isinstance(pred, A.InSubqueryPred):
            bump("not_in" if pred.negated else "in")
            visit_sub(pred.subquery)
        elif isinstance(pred, A.QuantifiedPred):
            bump(f"{pred.op} {pred.quantifier}")
            visit_sub(pred.subquery)
        elif isinstance(pred, A.ComparisonPred):
            for side in (pred.left, pred.right):
                if isinstance(side, A.ScalarSubquery):
                    call = side.subquery.items[0].expr
                    func = (
                        f"{pred.op} {call.func}{'(*)' if call.star else ''}"
                        if isinstance(call, A.AggregateCall)
                        else f"{pred.op} scalar"
                    )
                    bump(func)
                    visit_sub(side.subquery)

    if stmt.group_by:
        bump("group-by-root")
    visit(stmt.where)
    visit(stmt.having)


# ---------------------------------------------------------------------- #
# bug injection (self-test of the whole fuzz pipeline)
# ---------------------------------------------------------------------- #


def mutate_first_link(query: NestedQuery) -> NestedQuery:
    """A deep copy of *query* with its first linking predicate broken.

    Quantified links get their theta negated (``= SOME`` -> ``<> SOME``);
    IN / NOT IN swap polarity; EXISTS / NOT EXISTS swap polarity.  This is
    exactly the class of bug the differential oracle exists to catch.
    """
    root = copy.deepcopy(query.root)
    for block in root.walk():
        link = block.link
        if link is None:
            continue
        if link.operator == "exists":
            block.link = dc_replace(link, operator="not_exists")
        elif link.operator == "not_exists":
            block.link = dc_replace(link, operator="exists")
        elif link.operator == "in":
            block.link = dc_replace(link, operator="not_in", theta="<>")
        elif link.operator == "not_in":
            block.link = dc_replace(link, operator="in", theta="=")
        else:  # some / all
            assert link.theta is not None
            block.link = dc_replace(link, theta=negate_op(link.theta))
        break
    return NestedQuery(root)


class MutatedLinkStrategy:
    """A deliberately buggy strategy: evaluates the query with one linking
    predicate mutated.  Used by ``repro fuzz --inject-bug`` and the test
    suite to prove the fuzzer catches and shrinks real disagreements."""

    name = "nested-relational[mutated-link]"

    def __init__(self, base: str = "nested-relational"):
        self.base = base

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        return run(mutate_first_link(query), db, strategy=self.base)


class MiscountingSpanStrategy:
    """A strategy with correct *results* but broken trace accounting: it
    drops the first ``rows_out`` increment of every span, so the rows it
    returns still match the oracle while the span tree's cardinality
    contracts and pull-model row accounting are wrong.  Used by ``repro
    fuzz --inject-trace-bug`` and the test suite to prove that
    trace-invariant checking catches operator miscounts the differential
    value comparison cannot see."""

    name = "nested-relational[miscounting-span]"

    def __init__(self, base: str = "nested-relational"):
        self.base = base

    def execute(self, query: NestedQuery, db: Database) -> Relation:
        from ..engine import trace as trace_module

        original_add = trace_module.Span.add
        dropped = set()

        def lossy_add(span: "trace_module.Span", name: str, amount: int = 1) -> None:
            if name == "rows_out" and id(span) not in dropped:
                dropped.add(id(span))
                return
            original_add(span, name, amount)

        trace_module.Span.add = lossy_add  # type: ignore[method-assign]
        try:
            return run(query, db, strategy=self.base)
        finally:
            trace_module.Span.add = original_add  # type: ignore[method-assign]
