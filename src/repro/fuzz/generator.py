"""Random subquery generation directly over :mod:`repro.sql.ast`.

The generator produces multi-level nested SELECT statements inside the
paper's supported subset (subqueries only as top-level WHERE conjuncts,
correlated predicates as simple column/column comparisons) but otherwise
as adversarial as that subset allows:

* every linking operator — ``EXISTS / NOT EXISTS / IN / NOT IN /
  θ SOME / θ ALL`` with all six comparison thetas;
* linear chains *and* tree shapes (a block carrying two subqueries);
* correlations to the adjacent block **and** to non-adjacent ancestors
  (the paper's Query 3 shape, which defeats classical unnesting);
* nesting depth up to :attr:`FuzzConfig.max_depth` (capped at 4);
* local predicates mixing comparisons, BETWEEN, IS [NOT] NULL, IN-lists,
  OR and NOT — including comparisons against a literal NULL.

Aliases ``b0, b1, ...`` are assigned per block so every column reference
is unambiguous and the analyzer's scope resolution is exercised across
block boundaries.  All randomness flows through the caller-provided
``random.Random`` so a (seed, iteration) pair reproduces a case exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sql import ast as A
from ..engine.logic import validate_logic
from ..engine.types import NULL
from ..errors import InvalidArgumentError
from .datagen import ALL_COLUMNS, DatabaseSpec, PK_COLUMN, VALUE_COLUMNS

#: Linking operator families the generator draws from.
LINK_KINDS = ("exists", "not_exists", "in", "not_in", "some", "all")
THETAS = ("=", "<>", "<", "<=", ">", ">=")
#: Aggregate functions scalar-subquery links draw from; ``count(*)`` is
#: modelled as the pair ("count", star=True).
AGG_CHOICES = ("count_star", "count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzzing run (CLI flags map onto these)."""

    iterations: int = 500
    seed: int = 0
    #: maximum nesting depth (1 = one subquery level); capped at 4.
    max_depth: int = 3
    #: per-cell NULL probability in generated value columns.
    null_rate: float = 0.25
    #: maximum rows per generated table.
    max_rows: int = 8
    n_tables: int = 4
    domain: Tuple[int, int] = (-3, 3)
    #: probability that a block with depth budget spawns two subqueries.
    tree_probability: float = 0.2
    #: probability that a subquery block is correlated with an ancestor.
    correlation_probability: float = 0.8
    #: probability of an extra local predicate per block.
    local_probability: float = 0.4
    distinct_probability: float = 0.15
    #: probability the root block joins two tables.
    two_table_root_probability: float = 0.2
    #: probability a subquery link is a scalar-aggregate comparison
    #: (``x θ (SELECT agg(...) ...)``) instead of a set-membership link.
    aggregate_probability: float = 0.2
    #: probability a subquery link lands under OR / NOT instead of being
    #: a plain top-level conjunct (the disjunctive mark path).
    disjunction_probability: float = 0.15
    #: probability an IN / θ-quantified child becomes an uncorrelated
    #: ``GROUP BY ... HAVING`` block.
    group_probability: float = 0.15
    #: probability the root block carries GROUP BY + aggregates.
    root_group_probability: float = 0.15
    #: predicate semantics every strategy runs under: "3vl" or "2vl".
    logic: str = "3vl"
    #: strategy names to check (None = the runner's default set).
    strategies: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not (1 <= self.max_depth <= 4):
            raise InvalidArgumentError("max_depth must be between 1 and 4")
        if not (0.0 <= self.null_rate <= 1.0):
            raise InvalidArgumentError("null_rate must be a probability")
        if self.iterations < 0:
            raise InvalidArgumentError("iterations must be non-negative")
        object.__setattr__(self, "logic", validate_logic(self.logic))


class QueryGenerator:
    """Generates random nested SELECT statements against a
    :class:`~repro.fuzz.datagen.DatabaseSpec`."""

    def __init__(self, config: FuzzConfig):
        self.config = config

    def generate(self, rng: random.Random, spec: DatabaseSpec) -> A.SelectStmt:
        """One random query; depth is drawn from [1, max_depth]."""
        counter = [0]
        depth = rng.randint(1, self.config.max_depth)
        return self._select(
            rng, spec, counter, outer_aliases=(), budget=depth, root=True
        )

    # ------------------------------------------------------------------ #
    # block construction
    # ------------------------------------------------------------------ #

    def _select(
        self,
        rng: random.Random,
        spec: DatabaseSpec,
        counter: List[int],
        outer_aliases: Tuple[str, ...],
        budget: int,
        root: bool,
        star_ok: bool = False,
    ) -> A.SelectStmt:
        cfg = self.config

        def fresh_alias() -> str:
            alias = f"b{counter[0]}"
            counter[0] += 1
            return alias

        aliases = [fresh_alias()]
        tables = [A.TableRef(rng.choice(spec.tables).name, aliases[0])]
        if root and rng.random() < cfg.two_table_root_probability:
            aliases.append(fresh_alias())
            tables.append(A.TableRef(rng.choice(spec.tables).name, aliases[1]))

        conjuncts: List[A.Predicate] = []
        if len(aliases) == 2:
            # join predicate between the two root tables
            conjuncts.append(
                A.ComparisonPred(
                    rng.choice(("=", "=", "=", "<>")),
                    self._col(rng, aliases[0]),
                    self._col(rng, aliases[1]),
                )
            )
        if outer_aliases and rng.random() < cfg.correlation_probability:
            conjuncts.append(self._correlation(rng, aliases, outer_aliases))
            # occasionally a second correlation (possibly to a different
            # ancestor — the non-adjacent shape)
            if rng.random() < 0.2:
                conjuncts.append(self._correlation(rng, aliases, outer_aliases))
        if rng.random() < cfg.local_probability:
            conjuncts.append(self._local_predicate(rng, aliases))

        # subquery links
        if budget > 0:
            n_children = 1
            if rng.random() < cfg.tree_probability:
                n_children = 2
            for child in range(n_children):
                child_budget = budget - 1
                if child == 1:
                    # the second branch of a tree may be shallower
                    child_budget = rng.randint(0, budget - 1)
                link = self._link(
                    rng,
                    spec,
                    counter,
                    my_aliases=tuple(aliases),
                    outer_aliases=outer_aliases,
                    budget=child_budget,
                )
                if rng.random() < cfg.disjunction_probability:
                    link = self._disjoin(rng, aliases, link)
                conjuncts.append(link)

        where = self._conjoin(conjuncts) if conjuncts else None

        group_by: Tuple[A.ColumnRef, ...] = ()
        having: Optional[A.Predicate] = None
        if root and rng.random() < cfg.root_group_probability:
            group_by, having, items = self._root_grouping(rng, aliases)
        elif star_ok and rng.random() < 0.5:
            items = (A.SelectItem(expr=None, star=True),)
        elif root:
            items = tuple(
                A.SelectItem(expr=A.ColumnRef(alias, col))
                for alias, col in self._root_select(rng, aliases)
            )
        else:
            items = (A.SelectItem(expr=self._col(rng, rng.choice(aliases))),)

        distinct = root and not group_by and rng.random() < cfg.distinct_probability
        return A.SelectStmt(
            items=items,
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _root_select(
        self, rng: random.Random, aliases: Sequence[str]
    ) -> List[Tuple[str, str]]:
        """Root SELECT list: the first table's pk plus maybe a value col."""
        out = [(aliases[0], PK_COLUMN)]
        if rng.random() < 0.5:
            out.append((rng.choice(list(aliases)), rng.choice(VALUE_COLUMNS)))
        return out

    def _root_grouping(
        self, rng: random.Random, aliases: Sequence[str]
    ) -> Tuple[
        Tuple[A.ColumnRef, ...], Optional[A.Predicate], Tuple[A.SelectItem, ...]
    ]:
        """A grouped root: ``SELECT key, agg(...) ... GROUP BY key``
        with an optional HAVING over an aggregate."""
        key = self._col(rng, rng.choice(list(aliases)))
        agg = self._agg_call(rng, rng.choice(list(aliases)))
        items = (A.SelectItem(expr=key), A.SelectItem(expr=agg))
        having: Optional[A.Predicate] = None
        if rng.random() < 0.5:
            having = A.ComparisonPred(
                rng.choice(THETAS),
                self._agg_call(rng, rng.choice(list(aliases))),
                self._constant(rng),
            )
        return (key,), having, items

    def _agg_call(self, rng: random.Random, alias: str) -> A.AggregateCall:
        func = rng.choice(AGG_CHOICES)
        if func == "count_star":
            return A.AggregateCall("count", None, star=True)
        return A.AggregateCall(func, self._value_col(rng, alias))

    # ------------------------------------------------------------------ #
    # predicate pieces
    # ------------------------------------------------------------------ #

    def _col(self, rng: random.Random, alias: str) -> A.ColumnRef:
        return A.ColumnRef(alias, rng.choice(ALL_COLUMNS))

    def _value_col(self, rng: random.Random, alias: str) -> A.ColumnRef:
        return A.ColumnRef(alias, rng.choice(VALUE_COLUMNS))

    def _constant(self, rng: random.Random) -> A.Constant:
        # null_rate=0 means a fully NULL-free case (data *and* literals):
        # the 2VL-equivalence fuzz leg depends on that invariant.
        if rng.random() < 0.1 and self.config.null_rate > 0:
            return A.Constant(NULL)
        lo, hi = self.config.domain
        return A.Constant(rng.randint(lo, hi))

    def _correlation(
        self,
        rng: random.Random,
        my_aliases: Sequence[str],
        outer_aliases: Sequence[str],
    ) -> A.Predicate:
        """inner-column θ ancestor-column, in either orientation."""
        inner = self._col(rng, rng.choice(list(my_aliases)))
        outer = self._col(rng, rng.choice(list(outer_aliases)))
        # equality dominates (the realistic correlation), but non-equality
        # correlations are exactly where nest push-down must be careful
        op = rng.choice(("=", "=", "=", "=", "<>", "<", ">="))
        if rng.random() < 0.5:
            return A.ComparisonPred(op, inner, outer)
        return A.ComparisonPred(op, outer, inner)

    def _local_predicate(
        self, rng: random.Random, aliases: Sequence[str]
    ) -> A.Predicate:
        alias = rng.choice(list(aliases))
        kind = rng.random()
        if kind < 0.35:
            return A.ComparisonPred(
                rng.choice(THETAS), self._col(rng, alias), self._constant(rng)
            )
        if kind < 0.5:
            # column/column comparison within the block
            return A.ComparisonPred(
                rng.choice(THETAS),
                self._col(rng, alias),
                self._col(rng, rng.choice(list(aliases))),
            )
        if kind < 0.65:
            return A.IsNullPred(
                self._value_col(rng, alias), negated=rng.random() < 0.5
            )
        if kind < 0.78:
            lo, hi = sorted(
                (
                    rng.randint(*self.config.domain),
                    rng.randint(*self.config.domain),
                )
            )
            return A.BetweenPred(
                self._col(rng, alias), A.Constant(lo), A.Constant(hi)
            )
        if kind < 0.9:
            items = tuple(
                self._constant(rng) for _ in range(rng.randint(1, 3))
            )
            return A.InListPred(
                self._col(rng, alias), items, negated=rng.random() < 0.5
            )
        simple = A.ComparisonPred(
            rng.choice(THETAS), self._col(rng, alias), self._constant(rng)
        )
        other = A.ComparisonPred(
            rng.choice(THETAS), self._col(rng, alias), self._constant(rng)
        )
        if rng.random() < 0.5:
            return A.OrPred(simple, other)
        return A.NotPred(simple)

    def _link(
        self,
        rng: random.Random,
        spec: DatabaseSpec,
        counter: List[int],
        my_aliases: Tuple[str, ...],
        outer_aliases: Tuple[str, ...],
        budget: int,
    ) -> A.Predicate:
        """A subquery-bearing conjunct linking this block to a child."""
        if rng.random() < self.config.aggregate_probability:
            return self._agg_link(
                rng, spec, counter, my_aliases, outer_aliases, budget
            )
        kind = rng.choice(LINK_KINDS)
        if kind in ("in", "not_in", "some", "all") and (
            rng.random() < self.config.group_probability
        ):
            # grouped subquery blocks must be uncorrelated and childless,
            # so they are built directly rather than through _select
            sub = self._grouped_subquery(rng, spec, counter)
        else:
            sub = self._select(
                rng,
                spec,
                counter,
                outer_aliases=outer_aliases + my_aliases,
                budget=budget,
                root=False,
                star_ok=kind in ("exists", "not_exists"),
            )
        if kind in ("exists", "not_exists"):
            return A.ExistsPred(subquery=sub, negated=kind == "not_exists")
        # the linking attribute lives in the immediate parent block
        operand = self._col(rng, rng.choice(my_aliases))
        if kind in ("in", "not_in"):
            return A.InSubqueryPred(
                operand=operand, subquery=sub, negated=kind == "not_in"
            )
        return A.QuantifiedPred(
            operand=operand,
            op=rng.choice(THETAS),
            quantifier=kind,
            subquery=sub,
        )

    def _agg_link(
        self,
        rng: random.Random,
        spec: DatabaseSpec,
        counter: List[int],
        my_aliases: Tuple[str, ...],
        outer_aliases: Tuple[str, ...],
        budget: int,
    ) -> A.Predicate:
        """``x θ (SELECT agg(...) FROM ...)`` — a scalar-aggregate link.

        The COUNT-bug shape (correlated ``count(*) = 0``) falls out of
        this generator naturally: correlated subqueries frequently match
        zero inner rows, and ``=`` against a small constant is common.
        """
        sub = self._select(
            rng,
            spec,
            counter,
            outer_aliases=outer_aliases + my_aliases,
            budget=budget,
            root=False,
        )
        # replace the generated single-column select list with an
        # aggregate over the subquery's own table
        agg = self._agg_call(rng, sub.tables[0].alias)
        sub = A.SelectStmt(
            items=(A.SelectItem(expr=agg),),
            tables=sub.tables,
            where=sub.where,
        )
        theta = rng.choice(THETAS)
        if rng.random() < 0.3:
            # constant LHS — exercises COUNT(*) = 0 and friends
            lhs: A.ValueExpr = A.Constant(rng.randint(0, 2))
        else:
            lhs = self._col(rng, rng.choice(my_aliases))
        if rng.random() < 0.5:
            return A.ComparisonPred(theta, lhs, A.ScalarSubquery(sub))
        return A.ComparisonPred(theta, A.ScalarSubquery(sub), lhs)

    def _grouped_subquery(
        self, rng: random.Random, spec: DatabaseSpec, counter: List[int]
    ) -> A.SelectStmt:
        """An uncorrelated ``SELECT key ... GROUP BY key [HAVING ...]``
        membership source for IN / θ-quantified links."""
        alias = f"b{counter[0]}"
        counter[0] += 1
        table = rng.choice(spec.tables).name
        key = A.ColumnRef(alias, rng.choice(ALL_COLUMNS))
        where = None
        if rng.random() < self.config.local_probability:
            where = self._local_predicate(rng, [alias])
        having = None
        if rng.random() < 0.7:
            having = A.ComparisonPred(
                rng.choice(THETAS),
                self._agg_call(rng, alias),
                self._constant(rng),
            )
        return A.SelectStmt(
            items=(A.SelectItem(expr=key),),
            tables=(A.TableRef(table, alias),),
            where=where,
            group_by=(key,),
            having=having,
        )

    def _disjoin(
        self,
        rng: random.Random,
        aliases: Sequence[str],
        link: A.Predicate,
    ) -> A.Predicate:
        """Move a link out of the conjunctive top level: OR it with a
        plain predicate, or negate it — both lower into marked links."""
        roll = rng.random()
        if roll < 0.4:
            return A.OrPred(link, self._local_predicate(rng, aliases))
        if roll < 0.7:
            return A.OrPred(self._local_predicate(rng, aliases), link)
        return A.NotPred(link)

    @staticmethod
    def _conjoin(conjuncts: Sequence[A.Predicate]) -> A.Predicate:
        out = conjuncts[0]
        for pred in conjuncts[1:]:
            out = A.AndPred(out, pred)
        return out


def case_rng(seed: int, iteration: int) -> random.Random:
    """The per-iteration RNG: seeded from a string so the stream is stable
    across Python versions and the (seed, iteration) pair fully determines
    the case."""
    return random.Random(f"repro-fuzz:{seed}:{iteration}")
