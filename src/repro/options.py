"""Execution options: one frozen bundle for every execution knob.

:class:`ExecutionOptions` carries everything that shapes how a query
runs — strategy, backend, worker count, resource limits, degradation
policy, logic mode — as a single immutable value that can be stored,
compared, passed around and layered::

    import repro
    from repro.options import ExecutionOptions

    fast = ExecutionOptions(backend="vector", threads=4)
    session = repro.connect(db, options=fast)

    query = session.prepare(sql)
    query.execute()                                  # uses `fast`
    query.execute(options=fast.replace(threads=8))   # one-off variant
    query.execute(threads=1)                         # kwarg beats bundle

Layering is uniform everywhere the bundle is accepted
(:func:`repro.connect`, :class:`~repro.session.Session`,
:meth:`~repro.session.PreparedQuery.execute` / ``trace`` / ``verify`` /
``explain``): **session defaults ← ``options=`` bundle ← explicit
per-call keyword arguments**, where only non-``None`` fields override.
A field left ``None`` always means *inherit from the layer below*, so
partial bundles compose without clobbering unrelated settings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from .errors import InvalidArgumentError

#: the knobs an :class:`ExecutionOptions` carries, in layering order
OPTION_FIELDS = (
    "strategy",
    "backend",
    "threads",
    "timeout_ms",
    "memory_limit_mb",
    "spill_dir",
    "degrade",
    "logic",
)


@dataclass(frozen=True)
class ExecutionOptions:
    """An immutable bundle of execution settings; ``None`` = inherit.

    * ``strategy`` — registry name, ``"auto"`` (cost-based planner) or a
      strategy instance;
    * ``backend`` — ``"row"`` / ``"vector"`` execution substrate;
    * ``threads`` — worker count for morsel-driven parallel execution
      (under ``"auto"`` it makes the parallel strategy a *candidate*;
      the cost model decides whether splitting the work pays);
    * ``timeout_ms`` / ``memory_limit_mb`` — resource-governance limits;
    * ``spill_dir`` — directory for spill partitions; together with a
      memory budget it turns budget breaches at the spillable operators
      (hash-join builds, nest grouping) into Grace-style disk spills
      instead of :class:`~repro.errors.ResourceExhaustedError`;
    * ``degrade`` — ``"sequential"`` retries a failed parallel
      execution once on the single-threaded vectorized backend;
    * ``logic`` — ``"3vl"`` (SQL standard) or ``"2vl"`` (Libkin)
      predicate semantics.
    """

    strategy: Optional[Union[str, object]] = None
    backend: Optional[str] = None
    threads: Optional[int] = None
    timeout_ms: Optional[float] = None
    memory_limit_mb: Optional[float] = None
    spill_dir: Optional[str] = None
    degrade: Optional[str] = None
    logic: Optional[str] = None

    def merged(self, overrides: Optional["ExecutionOptions"]) -> "ExecutionOptions":
        """A new bundle where *overrides*' non-``None`` fields win."""
        if overrides is None:
            return self
        if not isinstance(overrides, ExecutionOptions):
            raise InvalidArgumentError(
                "options must be an ExecutionOptions, got "
                f"{type(overrides).__name__}"
            )
        updates = {
            name: value
            for name in OPTION_FIELDS
            if (value := getattr(overrides, name)) is not None
        }
        return dataclasses.replace(self, **updates) if updates else self

    def replace(self, **updates: object) -> "ExecutionOptions":
        """A new bundle with the given fields replaced (``None`` clears
        a field back to *inherit*)."""
        unknown = set(updates) - set(OPTION_FIELDS)
        if unknown:
            raise InvalidArgumentError(
                f"unknown execution option(s): {sorted(unknown)}; "
                f"expected a subset of {list(OPTION_FIELDS)}"
            )
        return dataclasses.replace(self, **updates)

    def describe(self) -> str:
        """The non-``None`` fields as ``name=value`` pairs (or
        ``"defaults"`` when every field inherits)."""
        parts = [
            f"{name}={getattr(self, name)!r}"
            for name in OPTION_FIELDS
            if getattr(self, name) is not None
        ]
        return ", ".join(parts) if parts else "defaults"


def layer_options(
    base: Optional[ExecutionOptions],
    options: Optional[ExecutionOptions],
    **kwargs: object,
) -> ExecutionOptions:
    """Apply the canonical layering: *base* ← *options* ← non-``None``
    *kwargs*.  The helper every ``options=``-accepting API goes
    through, so precedence cannot drift between entry points."""
    effective = base if base is not None else ExecutionOptions()
    effective = effective.merged(options)
    updates = {k: v for k, v in kwargs.items() if v is not None}
    if updates:
        effective = effective.replace(**updates)
    return effective
