"""repro — A Nested Relational Approach to Processing SQL Subqueries.

Reproduction of Cao & Badia, SIGMOD 2005.  The package provides:

* a flat relational engine with SQL three-valued logic
  (:mod:`repro.engine`),
* the paper's extended nested relational algebra — nest, linking
  predicates, linking/pseudo selection — and the nested relational
  evaluation strategies (:mod:`repro.core`),
* a SQL front-end for the non-aggregate-subquery subset
  (:mod:`repro.sql`),
* the baselines the paper compares against (:mod:`repro.baselines`),
* a TPC-H substrate and the paper's benchmark queries
  (:mod:`repro.tpch`), and
* the figure-by-figure benchmark harness (:mod:`repro.bench`).

Quickstart::

    import repro

    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
    session = repro.connect(db)
    query = session.prepare(repro.tpch.query1("1993-01-01", "1994-01-01"))
    result = query.execute()                             # auto strategy
    fast = query.execute(backend="vector")               # columnar engine
    oracle = query.execute(strategy="nested-iteration")
    assert result == oracle == fast
"""

from . import engine
from . import core
from . import sql
from . import baselines
from . import tpch
from . import fuzz
from . import oracle
from .engine import (
    Column,
    Database,
    Metrics,
    NULL,
    Relation,
    Schema,
    collect,
    is_null,
)
from .core import (
    Correlation,
    LinkSpec,
    NestedQuery,
    NestedRelation,
    NestedRelationalStrategy,
    OptimizedNestedRelationalStrategy,
    QueryBlock,
    SetPredicate,
    TreeExpression,
    available_strategies,
    choose_strategy,
    execute,
    execute_traced,
    linking_selection,
    nest,
    nest_sorted,
    pseudo_selection,
    unnest,
)
from .core import Plan, PlannerDecision
from . import strategies
from .errors import ReproError
from .options import ExecutionOptions
from .session import PreparedQuery, Session, connect
from .sql import compile_sql, parse

__version__ = "1.3.0"

# One shim session per database so repeated run_sql() calls share the
# compile memo instead of re-analyzing the same SQL through a throwaway
# Session each time; weak keys let databases be collected normally.
import weakref as _weakref

_SHIM_SESSIONS: "_weakref.WeakKeyDictionary[Database, Session]" = (
    _weakref.WeakKeyDictionary()
)


def run_sql(
    text: str, db: Database, strategy: str = "auto", backend=None
) -> Relation:
    """Deprecated: use ``repro.connect(db).prepare(text).execute()``.

    Kept as a thin shim over the Session API for callers written against
    the 1.0 surface.
    """
    import warnings

    warnings.warn(
        "repro.run_sql() is deprecated; use "
        "repro.connect(db).prepare(sql).execute() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session = _SHIM_SESSIONS.get(db)
    if session is None:
        session = connect(db)
        _SHIM_SESSIONS[db] = session
    return session.prepare(text).execute(strategy=strategy, backend=backend)


__all__ = [
    "engine",
    "core",
    "sql",
    "baselines",
    "tpch",
    "fuzz",
    "oracle",
    "NULL",
    "is_null",
    "Column",
    "Schema",
    "Relation",
    "Database",
    "Metrics",
    "collect",
    "NestedQuery",
    "QueryBlock",
    "LinkSpec",
    "Correlation",
    "NestedRelation",
    "SetPredicate",
    "TreeExpression",
    "nest",
    "nest_sorted",
    "unnest",
    "linking_selection",
    "pseudo_selection",
    "NestedRelationalStrategy",
    "OptimizedNestedRelationalStrategy",
    "available_strategies",
    "choose_strategy",
    "execute",
    "execute_traced",
    "compile_sql",
    "parse",
    "run_sql",
    "connect",
    "Session",
    "PreparedQuery",
    "ExecutionOptions",
    "Plan",
    "PlannerDecision",
    "strategies",
    "ReproError",
    "__version__",
]
