"""repro — A Nested Relational Approach to Processing SQL Subqueries.

Reproduction of Cao & Badia, SIGMOD 2005.  The package provides:

* a flat relational engine with SQL three-valued logic
  (:mod:`repro.engine`),
* the paper's extended nested relational algebra — nest, linking
  predicates, linking/pseudo selection — and the nested relational
  evaluation strategies (:mod:`repro.core`),
* a SQL front-end for the non-aggregate-subquery subset
  (:mod:`repro.sql`),
* the baselines the paper compares against (:mod:`repro.baselines`),
* a TPC-H substrate and the paper's benchmark queries
  (:mod:`repro.tpch`), and
* the figure-by-figure benchmark harness (:mod:`repro.bench`).

Quickstart::

    import repro

    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
    sql = repro.tpch.query1("1993-01-01", "1994-01-01")
    result = repro.run_sql(sql, db)                      # auto strategy
    oracle = repro.run_sql(sql, db, strategy="nested-iteration")
    assert result == oracle
"""

from . import engine
from . import core
from . import sql
from . import baselines
from . import tpch
from . import fuzz
from .engine import (
    Column,
    Database,
    Metrics,
    NULL,
    Relation,
    Schema,
    collect,
    is_null,
)
from .core import (
    Correlation,
    LinkSpec,
    NestedQuery,
    NestedRelation,
    NestedRelationalStrategy,
    OptimizedNestedRelationalStrategy,
    QueryBlock,
    SetPredicate,
    TreeExpression,
    available_strategies,
    choose_strategy,
    execute,
    execute_traced,
    linking_selection,
    nest,
    nest_sorted,
    pseudo_selection,
    unnest,
)
from .errors import ReproError
from .sql import compile_sql, parse

__version__ = "1.0.0"


def run_sql(text: str, db: Database, strategy: str = "auto") -> Relation:
    """Parse, analyze and execute SQL text against *db*.

    *strategy* is a registry name from
    :func:`repro.core.available_strategies` or ``"auto"``.
    """
    query = compile_sql(text, db)
    return execute(query, db, strategy=strategy)


__all__ = [
    "engine",
    "core",
    "sql",
    "baselines",
    "tpch",
    "fuzz",
    "NULL",
    "is_null",
    "Column",
    "Schema",
    "Relation",
    "Database",
    "Metrics",
    "collect",
    "NestedQuery",
    "QueryBlock",
    "LinkSpec",
    "Correlation",
    "NestedRelation",
    "SetPredicate",
    "TreeExpression",
    "nest",
    "nest_sorted",
    "unnest",
    "linking_selection",
    "pseudo_selection",
    "NestedRelationalStrategy",
    "OptimizedNestedRelationalStrategy",
    "available_strategies",
    "choose_strategy",
    "execute",
    "execute_traced",
    "compile_sql",
    "parse",
    "run_sql",
    "ReproError",
    "__version__",
]
