"""The public execution API: ``connect(db) -> Session -> PreparedQuery``.

Every way of running SQL through this library goes through one surface::

    import repro

    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
    session = repro.connect(db)
    query = session.prepare(repro.tpch.query1("1993-01-01", "1994-01-01"))

    result = query.execute()                              # auto strategy
    fast = query.execute(backend="vector")                # columnar engine
    oracle = query.execute(strategy="nested-iteration")
    plan = query.explain()
    annotated = query.explain(analyze=True)
    result, trace = query.trace()

The *strategy* name selects a member of the :mod:`repro.strategies`
registry (or ``"auto"`` for the paper's routing policy); the *backend*
selects the execution substrate — ``"row"`` for the tuple-at-a-time
iterator engine, ``"vector"`` for the columnar batch engine — and
defaults to whatever the strategy was registered on.  Semantics never
depend on the backend; only performance does.

The CLI, the benchmark harness and the fuzzer all execute through this
module.  The historical entry points (``repro.run_sql``,
``repro.core.planner.execute`` / ``execute_traced``) survive as
deprecated shims over it.
"""

from __future__ import annotations

from typing import Optional, Union

from .core.plancache import SessionCache, reduce_scope
from .engine.catalog import Database
from .engine.governor import ResourceGovernor, validate_degrade
from .engine.logic import logic_mode, validate_logic
from .engine.parallel import validate_threads
from .engine.relation import Relation
from .errors import InvalidArgumentError


class PreparedQuery:
    """A compiled query bound to a session, ready to execute.

    Obtained from :meth:`Session.prepare`.  Preparation runs the parser
    and the semantic analyzer once; ``execute``/``explain``/``trace``
    may then be called any number of times with different strategies and
    backends.
    """

    def __init__(self, session: "Session", sql: str, query):
        self._session = session
        self.sql = sql
        #: the analyzed :class:`~repro.core.blocks.NestedQuery`
        self.query = query

    @property
    def session(self) -> "Session":
        return self._session

    def execute(
        self,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
    ) -> Relation:
        """Run the query and return the result :class:`Relation`.

        *strategy* is a registry name (see
        :func:`repro.strategies.names`), ``"auto"``, or a strategy
        instance; *backend* is ``"row"``, ``"vector"`` or ``None``
        (follow the strategy's registration).  *threads* > 1 routes onto
        the morsel-driven parallel strategy (defaults to the session's
        ``threads`` setting).

        *timeout_ms* / *memory_limit_mb* bound the execution (typed
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.ResourceExhaustedError` on breach);
        ``degrade="sequential"`` retries a failed parallel execution
        once on the single-threaded vectorized backend.  Each setting
        defaults to the session-wide value from :func:`connect`.
        """
        from .core import planner

        strategy, backend, threads = self._resolve(strategy, backend, threads)
        governor = self._session.governor(timeout_ms, memory_limit_mb, degrade)
        with logic_mode(self._session.logic), reduce_scope(
            self._session.reduce_cache()
        ):
            return planner.run(
                self.query,
                self._session.db,
                strategy=strategy,
                backend=backend,
                threads=threads,
                governor=governor,
            )

    def trace(
        self,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
    ):
        """Run the query under a tracing scope.

        Returns ``(result, trace)`` where *trace* is the
        :class:`~repro.engine.trace.Trace` span tree of the execution.
        Governance options match :meth:`execute`; a governed execution's
        trace carries a ``kind="governor"`` span recording the limits
        (and a ``degrade`` span around any sequential retry).
        """
        from .core import planner

        strategy, backend, threads = self._resolve(strategy, backend, threads)
        governor = self._session.governor(timeout_ms, memory_limit_mb, degrade)
        with logic_mode(self._session.logic), reduce_scope(
            self._session.reduce_cache()
        ):
            return planner.run_traced(
                self.query,
                self._session.db,
                strategy=strategy,
                backend=backend,
                threads=threads,
                governor=governor,
            )

    def _resolve(self, strategy, backend, threads):
        """Apply the session's thread default and the strategy memo.

        When the plan cache holds a resolved instance for this
        (strategy, backend, threads) request, the instance is reused and
        the request collapses to it; otherwise the original triple flows
        through to the planner (which memoizes the resolution on the way
        out when caching is on).
        """
        from .core import planner

        if threads is None:
            threads = self._session.threads
        cache = self._session._cache
        cache.validate(self._session.db.version)
        if not isinstance(strategy, str) or not cache.enabled:
            return strategy, backend, threads
        key = (self.sql, strategy, backend, threads, self._session.logic)
        impl = cache.strategy(key)
        if impl is None:
            impl = planner.resolve_strategy(
                strategy, self.query, backend, threads=threads
            )
            cache.store_strategy(key, impl)
        return impl, None, None

    def verify(
        self,
        engine: str = "sqlite",
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        raise_on_divergence: bool = True,
        capture_plans: bool = False,
    ):
        """Cross-check this query against an external engine.

        Loads the session's database into *engine* ("sqlite" always
        available; "duckdb" when installed; "internal" for the
        tuple-iteration evaluator), runs the dialect-rendered SQL there,
        executes *strategy* here, and diffs the row bags under canonical
        NULL handling.  Returns the
        :class:`~repro.oracle.diff.OracleComparison` report; with
        *raise_on_divergence* (the default) an unexpected mismatch —
        one the known-divergence registry does not explain — raises
        :class:`~repro.errors.OracleDivergenceError` instead.
        """
        from .oracle import cross_check, verify_or_raise

        reports = cross_check(
            self._session.db,
            self.sql,
            engine=engine,
            strategies=(strategy,),
            backend=backend,
            threads=threads,
            capture_plans=capture_plans,
        )
        if raise_on_divergence:
            verify_or_raise(reports)
        return reports[0]

    def explain(
        self,
        strategy: str = "auto",
        analyze: bool = False,
        timings: bool = True,
    ) -> str:
        """The plan text; with ``analyze=True``, execute the query and
        annotate the plan with per-operator row counts (and wall times
        unless ``timings=False``)."""
        from .core.explain import explain, explain_analyze

        text = explain(self.query, self._session.db, strategy=strategy)
        if analyze:
            text += "\n\n" + explain_analyze(
                self.query, self._session.db, strategy=strategy,
                timings=timings,
            )
        return text

    def describe(self) -> str:
        """The analyzed block structure (front-end view of the query),
        followed by the session's cache counters."""
        cache = self._session._cache
        state = "enabled" if cache.enabled else "compile-only"
        return (
            f"{self.query.describe()}\n\n"
            f"plan cache: {state} ({cache.stats.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        first = " ".join(self.sql.split())
        if len(first) > 60:
            first = first[:57] + "..."
        return f"PreparedQuery({first!r})"


class Session:
    """A connection-like handle binding queries to one database.

    *plan_cache* (default on) enables cross-query reuse: strategy
    resolutions and the vector backend's reduced-relation builds
    (``T_i = σ_Δi(R_i)``) are memoized across queries and invalidated
    when the catalog mutates.  Re-preparing identical SQL skips the
    parser and analyzer regardless of the flag.  *threads* sets the
    session-wide default for ``execute(threads=...)``; *logic* selects
    3VL (default) or Libkin 2VL predicate semantics for every execution
    in the session.
    """

    def __init__(
        self,
        db: Database,
        plan_cache: bool = True,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
        logic: str = "3vl",
    ):
        if not isinstance(db, Database):
            raise InvalidArgumentError(
                f"connect() expects a Database, got {type(db).__name__}"
            )
        self.db = db
        self.logic = validate_logic(logic)
        self.threads = validate_threads(threads)
        self.timeout_ms = timeout_ms
        self.memory_limit_mb = memory_limit_mb
        self.degrade = validate_degrade(degrade)
        # fail at connect() time, not first execute: build a throwaway
        # governor so bad session-wide limits are rejected immediately
        if timeout_ms is not None or memory_limit_mb is not None:
            ResourceGovernor(timeout_ms, memory_limit_mb, self.degrade)
        self._cache = SessionCache(enabled=plan_cache)

    def governor(
        self,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
    ) -> Optional[ResourceGovernor]:
        """A fresh per-execution governor, or None when ungoverned.

        Per-call settings override the session-wide defaults
        individually; a governor is built as soon as any of the three is
        set (a bare ``degrade`` policy still changes error handling).
        """
        timeout_ms = timeout_ms if timeout_ms is not None else self.timeout_ms
        memory_limit_mb = (
            memory_limit_mb
            if memory_limit_mb is not None
            else self.memory_limit_mb
        )
        degrade = degrade if degrade is not None else self.degrade
        if timeout_ms is None and memory_limit_mb is None and degrade is None:
            return None
        return ResourceGovernor(
            timeout_ms=timeout_ms,
            memory_limit_mb=memory_limit_mb,
            degrade=degrade,
        )

    @property
    def cache_stats(self):
        """The session's :class:`~repro.core.plancache.CacheStats`."""
        return self._cache.stats

    def reduce_cache(self) -> Optional[SessionCache]:
        """The cache executions may store reduced builds in, if enabled."""
        return self._cache if self._cache.enabled else None

    def prepare(self, sql: str) -> PreparedQuery:
        """Parse and analyze *sql* into a reusable :class:`PreparedQuery`.

        Identical SQL text is compiled once per catalog version — the
        memo is always on, independent of ``plan_cache``.
        """
        from .sql import compile_sql

        if not isinstance(sql, str):
            raise InvalidArgumentError(
                f"prepare() expects SQL text, got {type(sql).__name__}"
            )
        self._cache.validate(self.db.version)
        query = self._cache.plan(sql)
        if query is None:
            query = compile_sql(sql, self.db)
            self._cache.store_plan(sql, query)
        return PreparedQuery(self, sql, query)

    def execute(
        self,
        sql: str,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
    ) -> Relation:
        """One-shot convenience: ``prepare(sql).execute(...)``."""
        return self.prepare(sql).execute(
            strategy=strategy,
            backend=backend,
            threads=threads,
            timeout_ms=timeout_ms,
            memory_limit_mb=memory_limit_mb,
            degrade=degrade,
        )

    def strategies(self) -> list:
        """Strategy names this session can execute (including ``"auto"``)."""
        from .core.planner import available_strategies

        return available_strategies()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.db.summary().splitlines()[0]!r})"


def connect(
    db: Database,
    plan_cache: bool = True,
    threads: Optional[int] = None,
    timeout_ms: Optional[float] = None,
    memory_limit_mb: Optional[float] = None,
    degrade: Optional[str] = None,
    logic: str = "3vl",
) -> Session:
    """Open a :class:`Session` over an in-memory :class:`Database`.

    ``plan_cache=False`` disables cross-query strategy/build reuse
    (identical-SQL compilation is still memoized); *threads* sets the
    session's default worker count for parallel execution.
    *timeout_ms*, *memory_limit_mb* and *degrade* set session-wide
    resource-governance defaults, overridable per
    ``execute``/``trace`` call.  ``logic`` selects the predicate
    semantics: ``"3vl"`` (SQL-standard Kleene logic, the default) or
    ``"2vl"`` (Libkin two-valued logic, where any comparison with NULL
    is plain FALSE) — the modes coincide exactly on NULL-free data.
    """
    return Session(
        db,
        plan_cache=plan_cache,
        threads=threads,
        timeout_ms=timeout_ms,
        memory_limit_mb=memory_limit_mb,
        degrade=degrade,
        logic=logic,
    )
