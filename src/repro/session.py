"""The public execution API: ``connect(db) -> Session -> PreparedQuery``.

Every way of running SQL through this library goes through one surface::

    import repro

    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
    session = repro.connect(db)
    query = session.prepare(repro.tpch.query1("1993-01-01", "1994-01-01"))

    result = query.execute()                              # auto strategy
    fast = query.execute(backend="vector")                # columnar engine
    oracle = query.execute(strategy="nested-iteration")
    plan = query.explain()
    annotated = query.explain(analyze=True)
    result, trace = query.trace()

The *strategy* name selects a member of the :mod:`repro.strategies`
registry, or ``"auto"`` for the cost-based planner: every applicable
strategy is enumerated, priced against sampled table statistics (plus
this session's observed cardinalities from traced executions), and the
cheapest runs — the decision is inspectable via ``query.explain()`` and
recorded as a ``kind='planner'`` span in every trace.  The *backend*
selects the execution substrate — ``"row"`` for the tuple-at-a-time
iterator engine, ``"vector"`` for the columnar batch engine — and
defaults to whatever the strategy was registered on.  Semantics never
depend on the backend; only performance does.

Every execution knob can also travel as one immutable
:class:`~repro.options.ExecutionOptions` bundle, layered as *session
defaults ← options= ← explicit keyword arguments* (non-``None`` fields
win at each step).

The CLI, the benchmark harness and the fuzzer all execute through this
module.  The historical entry points (``repro.run_sql``,
``repro.core.planner.execute`` / ``execute_traced``) survive as
deprecated shims over it.
"""

from __future__ import annotations

from typing import Optional, Union

from .core.feedback import FeedbackStore
from .core.plancache import SessionCache, reduce_scope
from .engine.catalog import Database
from .engine.governor import ResourceGovernor, validate_degrade
from .engine.logic import logic_mode, validate_logic
from .engine.parallel import validate_threads
from .engine.relation import Relation
from .errors import InvalidArgumentError
from .options import ExecutionOptions, layer_options


class PreparedQuery:
    """A compiled query bound to a session, ready to execute.

    Obtained from :meth:`Session.prepare`.  Preparation runs the parser
    and the semantic analyzer once; ``execute``/``explain``/``trace``
    may then be called any number of times with different strategies and
    backends.
    """

    def __init__(self, session: "Session", sql: str, query):
        self._session = session
        self.sql = sql
        #: the analyzed :class:`~repro.core.blocks.NestedQuery`
        self.query = query

    @property
    def session(self) -> "Session":
        return self._session

    def execute(
        self,
        strategy: Optional[Union[str, object]] = None,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
        degrade: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        governor: Optional[ResourceGovernor] = None,
    ) -> Relation:
        """Run the query and return the result :class:`Relation`.

        *strategy* is a registry name (see
        :func:`repro.strategies.names`), ``"auto"`` (the default: the
        cost-based planner picks the cheapest applicable strategy), or a
        strategy instance; *backend* is ``"row"``, ``"vector"`` or
        ``None`` (follow the strategy's registration).  *threads* > 1
        makes the morsel-driven parallel strategy a planner candidate
        (and is forwarded to any explicitly named strategy).

        *timeout_ms* / *memory_limit_mb* bound the execution (typed
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.ResourceExhaustedError` on breach);
        *spill_dir* turns memory-budget breaches at the spillable
        operators into Grace-style disk spills instead of errors;
        ``degrade="sequential"`` retries a failed parallel execution
        once on the single-threaded vectorized backend.

        Settings layer as *session defaults ← options= ← explicit
        keyword arguments*; every ``None`` inherits from the layer
        below.

        *governor* (advanced) supplies a pre-built
        :class:`~repro.engine.governor.ResourceGovernor` instead of
        letting the session construct one from the layered limits — a
        serving layer passes its own so it can cancel the execution
        from another thread and harvest degradation/spill counters
        afterwards.
        """
        from .core import planner

        eff = self._options(
            strategy=strategy, backend=backend, threads=threads,
            timeout_ms=timeout_ms, memory_limit_mb=memory_limit_mb,
            spill_dir=spill_dir, degrade=degrade, options=options,
        )
        resolved, backend, threads = self._resolve(
            eff.strategy, eff.backend, eff.threads, eff.memory_limit_mb
        )
        if governor is None:
            governor = self._session.governor(
                eff.timeout_ms, eff.memory_limit_mb, eff.degrade,
                eff.spill_dir,
            )
        with logic_mode(self._logic(eff)), reduce_scope(
            self._session.reduce_cache()
        ):
            return planner.run(
                self.query,
                self._session.db,
                strategy=resolved,
                backend=backend,
                threads=threads,
                governor=governor,
                feedback=self._session.feedback,
            )

    def trace(
        self,
        strategy: Optional[Union[str, object]] = None,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
        degrade: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
    ):
        """Run the query under a tracing scope.

        Returns ``(result, trace)`` where *trace* is the
        :class:`~repro.engine.trace.Trace` span tree of the execution.
        Options layer exactly as in :meth:`execute`; a governed
        execution's trace carries a ``kind="governor"`` span recording
        the limits (and a ``degrade`` span around any sequential retry),
        and an ``"auto"`` execution a ``kind="planner"`` span recording
        the cost-based decision.

        Tracing also **closes the planner's feedback loop**: observed
        per-block cardinalities from the span tree are recorded in the
        session's :class:`~repro.core.feedback.FeedbackStore`, so later
        ``"auto"`` executions of structurally equivalent queries re-cost
        with actuals instead of estimates.
        """
        from .core import planner
        from .core.optimizer import plan_fingerprint

        eff = self._options(
            strategy=strategy, backend=backend, threads=threads,
            timeout_ms=timeout_ms, memory_limit_mb=memory_limit_mb,
            spill_dir=spill_dir, degrade=degrade, options=options,
        )
        resolved, backend, threads = self._resolve(
            eff.strategy, eff.backend, eff.threads, eff.memory_limit_mb
        )
        governor = self._session.governor(
            eff.timeout_ms, eff.memory_limit_mb, eff.degrade, eff.spill_dir
        )
        with logic_mode(self._logic(eff)), reduce_scope(
            self._session.reduce_cache()
        ):
            result, trace = planner.run_traced(
                self.query,
                self._session.db,
                strategy=resolved,
                backend=backend,
                threads=threads,
                governor=governor,
                feedback=self._session.feedback,
            )
        self._session.feedback.observe(plan_fingerprint(self.query), trace)
        return result, trace

    def _options(self, options=None, **kwargs) -> ExecutionOptions:
        """Layer *session defaults ← options= ← non-None kwargs*."""
        return layer_options(self._session.options, options, **kwargs)

    def _logic(self, eff: ExecutionOptions) -> str:
        """The logic mode for one execution (per-call override wins)."""
        if eff.logic is not None and eff.logic != self._session.logic:
            return validate_logic(eff.logic)
        return self._session.logic

    def _resolve(self, strategy, backend, threads, memory_limit_mb=None):
        """Apply the session's strategy default and the plan-cache memo.

        ``"auto"`` (and ``None``, which means it) resolves through the
        cost-based planner; the resulting
        :class:`~repro.core.optimizer.PlannerDecision` is memoized
        keyed by the feedback epoch, so new observations — and only new
        observations — force a re-cost.  A fixed registry name memoizes
        its resolved instance as before.  With the cache disabled the
        original triple flows through to the planner, which decides
        per execution.
        """
        from .core import planner
        from .core.optimizer import choose

        if strategy is None:
            strategy = "auto"
        if threads is None:
            threads = self._session.threads
        cache = self._session._cache
        cache.validate(self._session.db.version)
        if not isinstance(strategy, str) or not cache.enabled:
            return strategy, backend, threads
        feedback = self._session.feedback
        if strategy == "auto":
            key = (
                self.sql, strategy, backend, threads,
                self._session.logic, feedback.epoch, memory_limit_mb,
            )
            decision = cache.strategy(key)
            if decision is None:
                decision = choose(
                    self.query, self._session.db,
                    backend=backend, threads=threads, feedback=feedback,
                    memory_limit_mb=memory_limit_mb,
                )
                cache.store_strategy(key, decision)
            return decision, None, None
        key = (self.sql, strategy, backend, threads, self._session.logic)
        impl = cache.strategy(key)
        if impl is None:
            impl = planner.resolve_strategy(
                strategy, self.query, backend, threads=threads
            )
            cache.store_strategy(key, impl)
        return impl, None, None

    def verify(
        self,
        engine: str = "sqlite",
        strategy: Optional[Union[str, object]] = None,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        raise_on_divergence: bool = True,
        capture_plans: bool = False,
        options: Optional[ExecutionOptions] = None,
    ):
        """Cross-check this query against an external engine.

        Loads the session's database into *engine* ("sqlite" always
        available; "duckdb" when installed; "internal" for the
        tuple-iteration evaluator), runs the dialect-rendered SQL there,
        executes *strategy* here, and diffs the row bags under canonical
        NULL handling.  Returns the
        :class:`~repro.oracle.diff.OracleComparison` report; with
        *raise_on_divergence* (the default) an unexpected mismatch —
        one the known-divergence registry does not explain — raises
        :class:`~repro.errors.OracleDivergenceError` instead.
        """
        from .oracle import cross_check, verify_or_raise

        eff = self._options(
            strategy=strategy, backend=backend, threads=threads,
            options=options,
        )
        reports = cross_check(
            self._session.db,
            self.sql,
            engine=engine,
            strategies=(eff.strategy if eff.strategy is not None else "auto",),
            backend=eff.backend,
            threads=eff.threads,
            capture_plans=capture_plans,
        )
        if raise_on_divergence:
            verify_or_raise(reports)
        return reports[0]

    def explain(
        self,
        strategy: Optional[str] = None,
        analyze: bool = False,
        timings: bool = True,
        options: Optional[ExecutionOptions] = None,
    ):
        """The typed :class:`~repro.core.plan.Plan` for this query.

        For an ``"auto"`` request (the default) the plan carries the
        cost-based planner's full candidate table — every applicable
        strategy with estimated cost and cardinality, cheapest first —
        priced with this session's feedback observations.  With
        ``analyze=True`` the query is executed under tracing and the
        annotated span tree is attached (wall times included unless
        ``timings=False``).

        Render with ``str(plan)`` / ``plan.render()`` (human-readable)
        or ``plan.render(format="json")`` (machine-readable).
        """
        from .core.plan import build_plan

        eff = self._options(strategy=strategy, options=options)
        return build_plan(
            self.query,
            self._session.db,
            self.sql,
            strategy=eff.strategy if eff.strategy is not None else "auto",
            analyze=analyze,
            timings=timings,
            feedback=self._session.feedback,
            backend=eff.backend,
            threads=eff.threads,
        )

    def describe(self) -> str:
        """The analyzed block structure (front-end view of the query),
        followed by the session's cache counters."""
        cache = self._session._cache
        state = "enabled" if cache.enabled else "compile-only"
        return (
            f"{self.query.describe()}\n\n"
            f"plan cache: {state} ({cache.stats.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        first = " ".join(self.sql.split())
        if len(first) > 60:
            first = first[:57] + "..."
        return f"PreparedQuery({first!r})"


class Session:
    """A connection-like handle binding queries to one database.

    *plan_cache* (default on) enables cross-query reuse: planner
    decisions, strategy resolutions and the vector backend's
    reduced-relation builds (``T_i = σ_Δi(R_i)``) are memoized across
    queries and invalidated when the catalog mutates (planner decisions
    additionally age out when new feedback observations land).
    Re-preparing identical SQL skips the parser and analyzer regardless
    of the flag.  Defaults for every execution knob can be given either
    as individual keyword arguments or as one
    :class:`~repro.options.ExecutionOptions` bundle via *options*
    (explicit keyword arguments win field-by-field); *logic* selects
    3VL (default) or Libkin 2VL predicate semantics for every execution
    in the session.

    Each session owns a :class:`~repro.core.feedback.FeedbackStore`:
    traced executions record observed per-block cardinalities, and
    subsequent ``"auto"`` executions re-cost with those actuals.
    """

    def __init__(
        self,
        db: Database,
        plan_cache: bool = True,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
        degrade: Optional[str] = None,
        logic: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        cache: Optional[SessionCache] = None,
        feedback: Optional[FeedbackStore] = None,
    ):
        if not isinstance(db, Database):
            raise InvalidArgumentError(
                f"connect() expects a Database, got {type(db).__name__}"
            )
        self.db = db
        #: the session-wide defaults every execution layers on top of
        self.options = layer_options(
            ExecutionOptions(), options,
            threads=threads, timeout_ms=timeout_ms,
            memory_limit_mb=memory_limit_mb, spill_dir=spill_dir,
            degrade=degrade, logic=logic,
        )
        self.logic = validate_logic(
            self.options.logic if self.options.logic is not None else "3vl"
        )
        self.threads = validate_threads(self.options.threads)
        self.timeout_ms = self.options.timeout_ms
        self.memory_limit_mb = self.options.memory_limit_mb
        self.spill_dir = self.options.spill_dir
        self.degrade = validate_degrade(self.options.degrade)
        # fail at connect() time, not first execute: build a throwaway
        # governor so bad session-wide limits are rejected immediately
        if self.timeout_ms is not None or self.memory_limit_mb is not None:
            ResourceGovernor(
                self.timeout_ms, self.memory_limit_mb, self.degrade,
                self.spill_dir,
            )
        # *cache*/*feedback* let a server pool many sessions over ONE
        # SessionCache and FeedbackStore (both thread-safe), so tenants
        # share compiled plans, reduced builds and observed
        # cardinalities; a plain connect() keeps them private
        self._cache = (
            cache if cache is not None else SessionCache(enabled=plan_cache)
        )
        #: observed cardinalities feeding the cost-based planner
        self.feedback = feedback if feedback is not None else FeedbackStore()

    def governor(
        self,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        degrade: Optional[str] = None,
        spill_dir: Optional[str] = None,
    ) -> Optional[ResourceGovernor]:
        """A fresh per-execution governor, or None when ungoverned.

        Per-call settings override the session-wide defaults
        individually; a governor is built as soon as any of the three is
        set (a bare ``degrade`` policy still changes error handling).
        """
        timeout_ms = timeout_ms if timeout_ms is not None else self.timeout_ms
        memory_limit_mb = (
            memory_limit_mb
            if memory_limit_mb is not None
            else self.memory_limit_mb
        )
        degrade = degrade if degrade is not None else self.degrade
        spill_dir = spill_dir if spill_dir is not None else self.spill_dir
        if timeout_ms is None and memory_limit_mb is None and degrade is None:
            return None
        return ResourceGovernor(
            timeout_ms=timeout_ms,
            memory_limit_mb=memory_limit_mb,
            degrade=degrade,
            spill_dir=spill_dir,
        )

    @property
    def cache_stats(self):
        """The session's :class:`~repro.core.plancache.CacheStats`."""
        return self._cache.stats

    def reduce_cache(self) -> Optional[SessionCache]:
        """The cache executions may store reduced builds in, if enabled."""
        return self._cache if self._cache.enabled else None

    def prepare(self, sql: str) -> PreparedQuery:
        """Parse and analyze *sql* into a reusable :class:`PreparedQuery`.

        Identical SQL text is compiled once per catalog version — the
        memo is always on, independent of ``plan_cache``.
        """
        from .sql import compile_sql

        if not isinstance(sql, str):
            raise InvalidArgumentError(
                f"prepare() expects SQL text, got {type(sql).__name__}"
            )
        self._cache.validate(self.db.version)
        query = self._cache.plan(sql)
        if query is None:
            query = compile_sql(sql, self.db)
            self._cache.store_plan(sql, query)
        return PreparedQuery(self, sql, query)

    def execute(
        self,
        sql: str,
        strategy: Optional[Union[str, object]] = None,
        backend: Optional[str] = None,
        threads: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        spill_dir: Optional[str] = None,
        degrade: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> Relation:
        """One-shot convenience: ``prepare(sql).execute(...)``."""
        return self.prepare(sql).execute(
            strategy=strategy,
            backend=backend,
            threads=threads,
            timeout_ms=timeout_ms,
            memory_limit_mb=memory_limit_mb,
            spill_dir=spill_dir,
            degrade=degrade,
            options=options,
        )

    def strategies(self) -> list:
        """Strategy names this session can execute (including ``"auto"``)."""
        from .core.planner import available_strategies

        return available_strategies()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.db.summary().splitlines()[0]!r})"


def connect(
    db: Database,
    plan_cache: bool = True,
    threads: Optional[int] = None,
    timeout_ms: Optional[float] = None,
    memory_limit_mb: Optional[float] = None,
    spill_dir: Optional[str] = None,
    degrade: Optional[str] = None,
    logic: Optional[str] = None,
    options: Optional[ExecutionOptions] = None,
) -> Session:
    """Open a :class:`Session` over an in-memory :class:`Database`.

    ``plan_cache=False`` disables cross-query decision/strategy/build
    reuse (identical-SQL compilation is still memoized); *threads* sets
    the session's default worker count for parallel execution.
    *timeout_ms*, *memory_limit_mb* and *degrade* set session-wide
    resource-governance defaults, overridable per
    ``execute``/``trace`` call; *spill_dir* lets budget breaches at the
    spillable operators spill to disk instead of raising.  ``logic`` selects the predicate
    semantics: ``"3vl"`` (SQL-standard Kleene logic, the default) or
    ``"2vl"`` (Libkin two-valued logic, where any comparison with NULL
    is plain FALSE) — the modes coincide exactly on NULL-free data.
    *options* supplies the same defaults as one
    :class:`~repro.options.ExecutionOptions` bundle; the explicit
    keyword arguments win field-by-field.
    """
    return Session(
        db,
        plan_cache=plan_cache,
        threads=threads,
        timeout_ms=timeout_ms,
        memory_limit_mb=memory_limit_mb,
        spill_dir=spill_dir,
        degrade=degrade,
        logic=logic,
        options=options,
    )
