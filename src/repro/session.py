"""The public execution API: ``connect(db) -> Session -> PreparedQuery``.

Every way of running SQL through this library goes through one surface::

    import repro

    db = repro.tpch.generate(repro.tpch.TpchConfig(scale_factor=0.001))
    session = repro.connect(db)
    query = session.prepare(repro.tpch.query1("1993-01-01", "1994-01-01"))

    result = query.execute()                              # auto strategy
    fast = query.execute(backend="vector")                # columnar engine
    oracle = query.execute(strategy="nested-iteration")
    plan = query.explain()
    annotated = query.explain(analyze=True)
    result, trace = query.trace()

The *strategy* name selects a member of the :mod:`repro.strategies`
registry (or ``"auto"`` for the paper's routing policy); the *backend*
selects the execution substrate — ``"row"`` for the tuple-at-a-time
iterator engine, ``"vector"`` for the columnar batch engine — and
defaults to whatever the strategy was registered on.  Semantics never
depend on the backend; only performance does.

The CLI, the benchmark harness and the fuzzer all execute through this
module.  The historical entry points (``repro.run_sql``,
``repro.core.planner.execute`` / ``execute_traced``) survive as
deprecated shims over it.
"""

from __future__ import annotations

from typing import Optional, Union

from .engine.catalog import Database
from .engine.relation import Relation
from .errors import InvalidArgumentError


class PreparedQuery:
    """A compiled query bound to a session, ready to execute.

    Obtained from :meth:`Session.prepare`.  Preparation runs the parser
    and the semantic analyzer once; ``execute``/``explain``/``trace``
    may then be called any number of times with different strategies and
    backends.
    """

    def __init__(self, session: "Session", sql: str, query):
        self._session = session
        self.sql = sql
        #: the analyzed :class:`~repro.core.blocks.NestedQuery`
        self.query = query

    @property
    def session(self) -> "Session":
        return self._session

    def execute(
        self,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
    ) -> Relation:
        """Run the query and return the result :class:`Relation`.

        *strategy* is a registry name (see
        :func:`repro.strategies.names`), ``"auto"``, or a strategy
        instance; *backend* is ``"row"``, ``"vector"`` or ``None``
        (follow the strategy's registration).
        """
        from .core import planner

        return planner.run(
            self.query, self._session.db, strategy=strategy, backend=backend
        )

    def trace(
        self,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
    ):
        """Run the query under a tracing scope.

        Returns ``(result, trace)`` where *trace* is the
        :class:`~repro.engine.trace.Trace` span tree of the execution.
        """
        from .core import planner

        return planner.run_traced(
            self.query, self._session.db, strategy=strategy, backend=backend
        )

    def explain(
        self,
        strategy: str = "auto",
        analyze: bool = False,
        timings: bool = True,
    ) -> str:
        """The plan text; with ``analyze=True``, execute the query and
        annotate the plan with per-operator row counts (and wall times
        unless ``timings=False``)."""
        from .core.explain import explain, explain_analyze

        text = explain(self.query, self._session.db, strategy=strategy)
        if analyze:
            text += "\n\n" + explain_analyze(
                self.query, self._session.db, strategy=strategy,
                timings=timings,
            )
        return text

    def describe(self) -> str:
        """The analyzed block structure (front-end view of the query)."""
        return self.query.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        first = " ".join(self.sql.split())
        if len(first) > 60:
            first = first[:57] + "..."
        return f"PreparedQuery({first!r})"


class Session:
    """A connection-like handle binding queries to one database."""

    def __init__(self, db: Database):
        if not isinstance(db, Database):
            raise InvalidArgumentError(
                f"connect() expects a Database, got {type(db).__name__}"
            )
        self.db = db

    def prepare(self, sql: str) -> PreparedQuery:
        """Parse and analyze *sql* into a reusable :class:`PreparedQuery`."""
        from .sql import compile_sql

        if not isinstance(sql, str):
            raise InvalidArgumentError(
                f"prepare() expects SQL text, got {type(sql).__name__}"
            )
        return PreparedQuery(self, sql, compile_sql(sql, self.db))

    def execute(
        self,
        sql: str,
        strategy: Union[str, object] = "auto",
        backend: Optional[str] = None,
    ) -> Relation:
        """One-shot convenience: ``prepare(sql).execute(...)``."""
        return self.prepare(sql).execute(strategy=strategy, backend=backend)

    def strategies(self) -> list:
        """Strategy names this session can execute (including ``"auto"``)."""
        from .core.planner import available_strategies

        return available_strategies()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.db.summary().splitlines()[0]!r})"


def connect(db: Database) -> Session:
    """Open a :class:`Session` over an in-memory :class:`Database`."""
    return Session(db)
