"""AST -> SQL text rendering (the parser's inverse).

The fuzzer generates queries directly as :mod:`repro.sql.ast` trees;
``render_sql`` turns them back into text so that failing cases can be
reported, minimized and checked into ``tests/fuzz_corpus/`` as plain SQL
strings.  The output is guaranteed to re-parse to an equal AST (see
``tests/sql/test_unparse.py`` for the round-trip property).

Only constructs the parser can produce are supported; anything else
raises :class:`~repro.errors.ReproError` so generator drift is caught
immediately rather than silently emitting unparseable corpus files.
"""

from __future__ import annotations

import math
import re

from ..engine.types import is_null
from ..errors import ReproError
from . import ast as A
from .lexer import KEYWORDS

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_EXPONENT = re.compile(r"[eE]")


def render_sql(stmt: A.SelectStmt) -> str:
    """Render a :class:`~repro.sql.ast.SelectStmt` as parseable SQL text."""
    parts = ["select"]
    if stmt.distinct:
        parts.append("distinct")
    parts.append(", ".join(_select_item(item) for item in stmt.items))
    parts.append("from")
    parts.append(", ".join(_table_ref(t) for t in stmt.tables))
    if stmt.where is not None:
        parts.append("where")
        parts.append(_predicate(stmt.where))
    if stmt.group_by:
        parts.append("group by")
        parts.append(", ".join(_colref(ref) for ref in stmt.group_by))
    if stmt.having is not None:
        parts.append("having")
        parts.append(_predicate(stmt.having))
    if stmt.order_by:
        parts.append("order by")
        parts.append(
            ", ".join(
                _colref(item.expr) + (" desc" if item.descending else "")
                for item in stmt.order_by
            )
        )
    if stmt.limit is not None:
        parts.append(f"limit {stmt.limit}")
    return " ".join(parts)


def _ident(name: str) -> str:
    """Validate an identifier; our grammar has no quoting, so a name the
    lexer would read back as a keyword, number or operator soup cannot
    round-trip and must be rejected rather than silently mangled."""
    if not _IDENT.match(name) or name.lower() in KEYWORDS:
        raise ReproError(
            f"identifier {name!r} cannot be rendered: it is a reserved "
            "word or not of the form [A-Za-z_][A-Za-z0-9_]*"
        )
    return name


def _colref(ref: A.ColumnRef) -> str:
    column = _ident(ref.column)
    if ref.table:
        return f"{_ident(ref.table)}.{column}"
    return column


def _select_item(item: A.SelectItem) -> str:
    if item.star:
        return "*"
    assert item.expr is not None
    if isinstance(item.expr, A.AggregateCall):
        return _agg_call(item.expr)
    return _colref(item.expr)


def _agg_call(call: A.AggregateCall) -> str:
    if call.star:
        return f"{call.func}(*)"
    assert call.arg is not None
    return f"{call.func}({_colref(call.arg)})"


def _table_ref(tref: A.TableRef) -> str:
    if tref.alias:
        return f"{_ident(tref.name)} {_ident(tref.alias)}"
    return _ident(tref.name)


def _value(expr: A.ValueExpr) -> str:
    if isinstance(expr, A.ColumnRef):
        return _colref(expr)
    if isinstance(expr, A.Constant):
        return _constant(expr.value)
    if isinstance(expr, A.BinaryArith):
        # parenthesize both sides: correct for every precedence mix, and
        # the parser discards parens so round-tripping stays exact
        return f"({_value(expr.left)} {expr.op} {_value(expr.right)})"
    if isinstance(expr, A.AggregateCall):
        return _agg_call(expr)
    if isinstance(expr, A.ScalarSubquery):
        return f"({render_sql(expr.subquery)})"
    raise ReproError(f"cannot render value expression {expr!r}")


def render_float_literal(value: float) -> str:
    """A float literal that parses everywhere, preferring plain decimal.

    ``repr`` switches to exponent notation (``1e-05``) below 1e-4 and
    above 1e16; small-magnitude exponent forms are expanded into
    positional decimal when the expansion round-trips exactly, so the
    literal also survives parsers without exponent support.  Infinities
    and NaNs have no SQL literal at all and are rejected.
    """
    if math.isinf(value) or math.isnan(value):
        raise ReproError(f"{value!r} has no SQL literal")
    text = repr(value)
    if not _EXPONENT.search(text):
        return text
    expanded = format(value, ".17f").rstrip("0")
    if expanded.endswith("."):
        expanded += "0"
    if float(expanded) == value:
        return expanded
    # huge/tiny magnitudes where positional form loses precision: keep
    # exponent notation (the lexer understands it)
    return text


def _constant(value: object) -> str:
    if is_null(value):
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return render_float_literal(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise ReproError(f"cannot render constant {value!r}")


def _predicate(pred: A.Predicate, parent: str = "or") -> str:
    """Render a predicate; *parent* is the tightest enclosing connective
    ("or" < "and" < "not") and decides whether parentheses are needed."""
    if isinstance(pred, A.OrPred):
        text = f"{_predicate(pred.left, 'or')} or {_predicate(pred.right, 'or')}"
        return f"({text})" if parent in ("and", "not") else text
    if isinstance(pred, A.AndPred):
        text = f"{_predicate(pred.left, 'and')} and {_predicate(pred.right, 'and')}"
        return f"({text})" if parent == "not" else text
    if isinstance(pred, A.NotPred):
        return f"not {_predicate(pred.operand, 'not')}"
    if isinstance(pred, A.ComparisonPred):
        return f"{_value(pred.left)} {pred.op} {_value(pred.right)}"
    if isinstance(pred, A.BetweenPred):
        return (
            f"{_value(pred.operand)} between "
            f"{_value(pred.low)} and {_value(pred.high)}"
        )
    if isinstance(pred, A.IsNullPred):
        negation = "is not null" if pred.negated else "is null"
        return f"{_value(pred.operand)} {negation}"
    if isinstance(pred, A.InListPred):
        items = ", ".join(_value(v) for v in pred.items)
        keyword = "not in" if pred.negated else "in"
        return f"{_value(pred.operand)} {keyword} ({items})"
    if isinstance(pred, A.ExistsPred):
        keyword = "not exists" if pred.negated else "exists"
        return f"{keyword} ({render_sql(pred.subquery)})"
    if isinstance(pred, A.InSubqueryPred):
        keyword = "not in" if pred.negated else "in"
        return f"{_value(pred.operand)} {keyword} ({render_sql(pred.subquery)})"
    if isinstance(pred, A.QuantifiedPred):
        return (
            f"{_value(pred.operand)} {pred.op} {pred.quantifier} "
            f"({render_sql(pred.subquery)})"
        )
    raise ReproError(f"cannot render predicate {pred!r}")
