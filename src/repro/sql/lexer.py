"""Tokenizer for the SQL subset.

The subset covers exactly what the paper's workloads need (and a little
more): SELECT [DISTINCT] list FROM tables WHERE predicate, with nested
subqueries linked by EXISTS / NOT EXISTS / IN / NOT IN / θ SOME|ANY /
θ ALL, comparison predicates, BETWEEN, IS [NOT] NULL, AND/OR/NOT,
numeric and string literals, and the NULL keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import ParseError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "or",
    "not",
    "in",
    "exists",
    "between",
    "is",
    "null",
    "any",
    "some",
    "all",
    "as",
    "true",
    "false",
    "group",
    "having",
    "order",
    "by",
    "limit",
    "asc",
    "desc",
}

#: multi-char operators first so maximal munch works
OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", "*", ".", "+", "-", "/"]


@dataclass(frozen=True)
class Token:
    """A lexical token: kind ∈ {kw, ident, number, string, op, eof}."""

    kind: str
    value: str
    position: int
    line: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.kind}:{self.value!r}@{self.line})"


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`ParseError` on illegal characters."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # SQL line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'" and j + 1 < n and text[j + 1] == "'":
                    buf.append("'")
                    j += 2
                    continue
                if text[j] == "'":
                    break
                if text[j] == "\n":
                    line += 1
                buf.append(text[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", i, line)
            tokens.append(Token("string", "".join(buf), i, line))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit is a qualifier, not a decimal
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            # optional exponent: e/E, optional sign, at least one digit
            # (an 'e' not followed by digits starts an identifier instead,
            # e.g. the alias in "... from t e")
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    while k < n and text[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("number", text[i:j], i, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("kw", lowered, i, line))
            else:
                tokens.append(Token("ident", word, i, line))
            i = j
            continue
        matched: Optional[str] = None
        for op in OPERATORS:
            if text.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise ParseError(f"illegal character {ch!r}", i, line)
        tokens.append(Token("op", matched, i, line))
        i += len(matched)
    tokens.append(Token("eof", "", n, line))
    return tokens
