"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    select    := SELECT [DISTINCT] items FROM tables [WHERE pred]
                 [GROUP BY columns [HAVING pred]]
    items     := '*' | item (',' item)*
    item      := qualified_column | aggregate
    aggregate := func '(' ('*' | qualified_column) ')'
    tables    := table (',' table)*
    table     := ident [[AS] ident]
    pred      := or_pred
    or_pred   := and_pred (OR and_pred)*
    and_pred  := not_pred (AND not_pred)*
    not_pred  := NOT not_pred | primary
    primary   := '(' pred ')'
               | [NOT] EXISTS '(' select ')'
               | value IS [NOT] NULL
               | value BETWEEN value AND value
               | value [NOT] IN '(' (select | value_list) ')'
               | value cmp (SOME|ANY|ALL) '(' select ')'
               | value cmp value
    value     := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := number | string | NULL | TRUE | FALSE
               | qualified_column | aggregate | '(' select ')'
               | '(' value ')' | '-' factor

Aggregate function names (``count``/``sum``/``avg``/``min``/``max``)
stay ordinary identifiers; the aggregate production only fires when one
is immediately followed by ``(``.  A parenthesized SELECT in value
position becomes a :class:`~repro.sql.ast.ScalarSubquery`.

Errors carry the offending token's line/position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from .ast import (
    AGGREGATE_FUNCS,
    AggregateCall,
    AndPred,
    BetweenPred,
    BinaryArith,
    ColumnRef,
    ComparisonPred,
    Constant,
    ExistsPred,
    InListPred,
    InSubqueryPred,
    IsNullPred,
    NotPred,
    OrderItem,
    OrPred,
    Predicate,
    QuantifiedPred,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    TableRef,
    ValueExpr,
)
from .lexer import Token, tokenize

COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------ #

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def expect_kw(self, word: str) -> Token:
        if not self.cur.is_kw(word):
            raise ParseError(
                f"expected {word.upper()}, found {self.cur.value!r}",
                self.cur.position,
                self.cur.line,
            )
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not (self.cur.kind == "op" and self.cur.value == op):
            raise ParseError(
                f"expected {op!r}, found {self.cur.value!r}",
                self.cur.position,
                self.cur.line,
            )
        return self.advance()

    def accept_kw(self, word: str) -> bool:
        if self.cur.is_kw(word):
            self.advance()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        if self.cur.kind == "op" and self.cur.value == op:
            self.advance()
            return True
        return False

    # -- grammar productions -------------------------------------------- #

    def parse(self) -> SelectStmt:
        stmt = self.select()
        if self.cur.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self.cur.value!r}",
                self.cur.position,
                self.cur.line,
            )
        return stmt

    def select(self) -> SelectStmt:
        self.expect_kw("select")
        distinct = self.accept_kw("distinct")
        items = self.select_items()
        self.expect_kw("from")
        tables = self.table_list()
        where: Optional[Predicate] = None
        if self.accept_kw("where"):
            where = self.predicate()
        group_by: List[ColumnRef] = []
        having: Optional[Predicate] = None
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_by.append(self.column_ref())
            while self.accept_op(","):
                group_by.append(self.column_ref())
        if self.accept_kw("having"):
            having = self.predicate()
        order_by: List[OrderItem] = []
        if self.accept_kw("order"):
            self.expect_kw("by")
            order_by.append(self.order_item())
            while self.accept_op(","):
                order_by.append(self.order_item())
        limit: Optional[int] = None
        if self.accept_kw("limit"):
            tok = self.cur
            if tok.kind != "number" or any(c in tok.value for c in ".eE"):
                raise ParseError(
                    "LIMIT expects an integer", tok.position, tok.line
                )
            self.advance()
            limit = int(tok.value)
        return SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            distinct=distinct,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def order_item(self) -> OrderItem:
        ref = self.column_ref()
        descending = False
        if self.accept_kw("desc"):
            descending = True
        elif self.accept_kw("asc"):
            descending = False
        return OrderItem(expr=ref, descending=descending)

    def select_items(self) -> List[SelectItem]:
        if self.accept_op("*"):
            return [SelectItem(expr=None, star=True)]
        items = [self.select_item()]
        while self.accept_op(","):
            items.append(self.select_item())
        return items

    def select_item(self) -> SelectItem:
        agg = self.maybe_aggregate_call()
        if agg is not None:
            return SelectItem(expr=agg)
        return SelectItem(expr=self.column_ref())

    def maybe_aggregate_call(self) -> Optional[AggregateCall]:
        """An :class:`AggregateCall` when the cursor sits on one, else None.

        Aggregate names are ordinary identifiers; only ``name(`` with a
        known *name* is treated as a call (maximal-munch lookahead).
        """
        tok = self.cur
        nxt = self.tokens[self.pos + 1]
        if not (
            tok.kind == "ident"
            and tok.value.lower() in AGGREGATE_FUNCS
            and nxt.kind == "op"
            and nxt.value == "("
        ):
            return None
        func = self.advance().value.lower()
        self.expect_op("(")
        if self.accept_op("*"):
            if func != "count":
                raise ParseError(
                    f"{func}(*) is not valid; only COUNT takes '*'",
                    tok.position,
                    tok.line,
                )
            self.expect_op(")")
            return AggregateCall(func="count", arg=None, star=True)
        arg = self.column_ref()
        self.expect_op(")")
        return AggregateCall(func=func, arg=arg)

    def table_list(self) -> List[TableRef]:
        tables = [self.table_ref()]
        while self.accept_op(","):
            tables.append(self.table_ref())
        return tables

    def table_ref(self) -> TableRef:
        if self.cur.kind != "ident":
            raise ParseError(
                f"expected table name, found {self.cur.value!r}",
                self.cur.position,
                self.cur.line,
            )
        name = self.advance().value
        alias: Optional[str] = None
        if self.accept_kw("as"):
            if self.cur.kind != "ident":
                raise ParseError(
                    "expected alias after AS", self.cur.position, self.cur.line
                )
            alias = self.advance().value
        elif self.cur.kind == "ident":
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def column_ref(self) -> ColumnRef:
        if self.cur.kind != "ident":
            raise ParseError(
                f"expected column reference, found {self.cur.value!r}",
                self.cur.position,
                self.cur.line,
            )
        first = self.advance().value
        if self.accept_op("."):
            if self.cur.kind != "ident":
                raise ParseError(
                    "expected column after '.'", self.cur.position, self.cur.line
                )
            return ColumnRef(table=first, column=self.advance().value)
        return ColumnRef(table=None, column=first)

    # -- predicates ------------------------------------------------------ #

    def predicate(self) -> Predicate:
        left = self.and_pred()
        while self.accept_kw("or"):
            left = OrPred(left, self.and_pred())
        return left

    def and_pred(self) -> Predicate:
        left = self.not_pred()
        while self.accept_kw("and"):
            left = AndPred(left, self.not_pred())
        return left

    def not_pred(self) -> Predicate:
        if self.cur.is_kw("not"):
            # NOT EXISTS is handled as a single unit in primary_pred so the
            # analyzer sees a negated ExistsPred rather than NOT(EXISTS).
            if self.tokens[self.pos + 1].is_kw("exists"):
                return self.primary_pred()
            self.advance()
            return NotPred(self.not_pred())
        return self.primary_pred()

    def primary_pred(self) -> Predicate:
        if self.cur.is_kw("not") and self.tokens[self.pos + 1].is_kw("exists"):
            self.advance()
            self.expect_kw("exists")
            self.expect_op("(")
            sub = self.select()
            self.expect_op(")")
            return ExistsPred(subquery=sub, negated=True)
        if self.cur.is_kw("exists"):
            self.advance()
            self.expect_op("(")
            sub = self.select()
            self.expect_op(")")
            return ExistsPred(subquery=sub, negated=False)
        if self.cur.kind == "op" and self.cur.value == "(":
            # could be a parenthesized predicate or a parenthesized value;
            # try predicate first by saving the position.
            saved = self.pos
            try:
                self.advance()
                inner = self.predicate()
                self.expect_op(")")
                return inner
            except ParseError:
                self.pos = saved
        value = self.value_expr()
        return self.postfix_pred(value)

    def postfix_pred(self, value: ValueExpr) -> Predicate:
        if self.accept_kw("is"):
            negated = self.accept_kw("not")
            self.expect_kw("null")
            return IsNullPred(operand=value, negated=negated)
        if self.accept_kw("between"):
            low = self.value_expr()
            self.expect_kw("and")
            high = self.value_expr()
            return BetweenPred(operand=value, low=low, high=high)
        negated = False
        if self.cur.is_kw("not"):
            if not self.tokens[self.pos + 1].is_kw("in"):
                raise ParseError(
                    "expected IN after NOT", self.cur.position, self.cur.line
                )
            self.advance()
            negated = True
        if self.accept_kw("in"):
            self.expect_op("(")
            if self.cur.is_kw("select"):
                sub = self.select()
                self.expect_op(")")
                return InSubqueryPred(operand=value, subquery=sub, negated=negated)
            items = [self.value_expr()]
            while self.accept_op(","):
                items.append(self.value_expr())
            self.expect_op(")")
            return InListPred(operand=value, items=tuple(items), negated=negated)
        if self.cur.kind == "op" and self.cur.value in COMPARISON_OPS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            if self.cur.is_kw("any") or self.cur.is_kw("some") or self.cur.is_kw("all"):
                quantifier = "all" if self.cur.value == "all" else "some"
                self.advance()
                self.expect_op("(")
                sub = self.select()
                self.expect_op(")")
                return QuantifiedPred(
                    operand=value, op=op, quantifier=quantifier, subquery=sub
                )
            right = self.value_expr()
            return ComparisonPred(op=op, left=value, right=right)
        raise ParseError(
            f"expected predicate operator, found {self.cur.value!r}",
            self.cur.position,
            self.cur.line,
        )

    # -- value expressions ------------------------------------------------ #

    def value_expr(self) -> ValueExpr:
        left = self.term()
        while self.cur.kind == "op" and self.cur.value in ("+", "-"):
            op = self.advance().value
            left = BinaryArith(op=op, left=left, right=self.term())
        return left

    def term(self) -> ValueExpr:
        left = self.factor()
        while self.cur.kind == "op" and self.cur.value in ("*", "/"):
            op = self.advance().value
            left = BinaryArith(op=op, left=left, right=self.factor())
        return left

    def factor(self) -> ValueExpr:
        tok = self.cur
        if tok.kind == "number":
            self.advance()
            if any(c in tok.value for c in ".eE"):
                return Constant(float(tok.value))
            return Constant(int(tok.value))
        if tok.kind == "string":
            self.advance()
            return Constant(tok.value)
        if tok.is_kw("null"):
            self.advance()
            from ..engine.types import NULL

            return Constant(NULL)
        if tok.is_kw("true"):
            self.advance()
            return Constant(True)
        if tok.is_kw("false"):
            self.advance()
            return Constant(False)
        if tok.kind == "op" and tok.value == "-":
            self.advance()
            inner = self.factor()
            if isinstance(inner, Constant) and isinstance(inner.value, (int, float)):
                return Constant(-inner.value)
            return BinaryArith(op="-", left=Constant(0), right=inner)
        if tok.kind == "op" and tok.value == "(":
            if self.tokens[self.pos + 1].is_kw("select"):
                self.advance()
                sub = self.select()
                self.expect_op(")")
                return ScalarSubquery(subquery=sub)
            self.advance()
            inner = self.value_expr()
            self.expect_op(")")
            return inner
        if tok.kind == "ident":
            agg = self.maybe_aggregate_call()
            if agg is not None:
                return agg
            return self.column_ref()
        raise ParseError(
            f"expected value expression, found {tok.value!r}",
            tok.position,
            tok.line,
        )


def parse(text: str) -> SelectStmt:
    """Parse SQL text into a :class:`~repro.sql.ast.SelectStmt`."""
    return Parser(text).parse()
