"""Abstract syntax tree for the SQL subset.

The parser produces this surface AST; the analyzer lowers it onto the
normalized :class:`~repro.core.blocks.NestedQuery` block model all the
strategies consume.  Predicate nodes reuse the engine's expression kinds
where possible; subquery-bearing predicates get dedicated node types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class ColumnRef:
    """``table.column`` or a bare ``column``."""

    table: Optional[str]
    column: str

    @property
    def text(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Constant:
    """A literal value: number, string or NULL/TRUE/FALSE."""

    value: object


@dataclass(frozen=True)
class BinaryArith:
    op: str
    left: "ValueExpr"
    right: "ValueExpr"


#: Aggregate functions the grammar accepts (``count`` also as ``count(*)``).
AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateCall:
    """``func(column)`` or ``count(*)``.

    Aggregate names are *not* reserved words: the lexer still reads
    ``count`` as an identifier, and the parser only builds this node when
    the identifier names an aggregate and is immediately followed by
    ``(``.  Valid positions (select list, HAVING, single-item scalar
    subqueries) are enforced by the analyzer, not the grammar.
    """

    func: str  # one of AGGREGATE_FUNCS
    arg: Optional[ColumnRef]  # None only for count(*)
    star: bool = False

    @property
    def text(self) -> str:
        inner = "*" if self.star else self.arg.text
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class ScalarSubquery:
    """``(SELECT agg(...) FROM ...)`` used in value position.

    Our subset requires the subquery to produce exactly one row — which
    it guarantees syntactically by allowing only a single ungrouped
    aggregate select item (checked by the analyzer).
    """

    subquery: "SelectStmt"


ValueExpr = Union[ColumnRef, Constant, BinaryArith, AggregateCall, ScalarSubquery]


@dataclass(frozen=True)
class ComparisonPred:
    op: str
    left: ValueExpr
    right: ValueExpr


@dataclass(frozen=True)
class BetweenPred:
    operand: ValueExpr
    low: ValueExpr
    high: ValueExpr


@dataclass(frozen=True)
class IsNullPred:
    operand: ValueExpr
    negated: bool


@dataclass(frozen=True)
class InListPred:
    operand: ValueExpr
    items: Tuple[ValueExpr, ...]
    negated: bool


@dataclass(frozen=True)
class AndPred:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class OrPred:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class NotPred:
    operand: "Predicate"


@dataclass(frozen=True)
class ExistsPred:
    """``[NOT] EXISTS (subquery)``."""

    subquery: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class InSubqueryPred:
    """``expr [NOT] IN (subquery)``."""

    operand: ValueExpr
    subquery: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class QuantifiedPred:
    """``expr θ SOME|ANY|ALL (subquery)``."""

    operand: ValueExpr
    op: str
    quantifier: str  # "some" | "all"
    subquery: "SelectStmt"


Predicate = Union[
    ComparisonPred,
    BetweenPred,
    IsNullPred,
    InListPred,
    AndPred,
    OrPred,
    NotPred,
    ExistsPred,
    InSubqueryPred,
    QuantifiedPred,
]


@dataclass(frozen=True)
class TableRef:
    """``name [AS] alias``."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry; ``star`` for ``SELECT *``.

    *expr* is a plain column reference or an :class:`AggregateCall`
    (grouped / global-aggregate queries).
    """

    expr: Optional[Union[ColumnRef, AggregateCall]]
    star: bool = False


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry: a column plus direction."""

    expr: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    """A (possibly nested) SELECT statement."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Predicate]
    distinct: bool = False
    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[Predicate] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
