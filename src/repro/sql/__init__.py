"""SQL front-end for the subset the paper's workloads use."""

from .lexer import Token, tokenize
from .parser import Parser, parse
from .analyzer import Analyzer, analyze, compile_sql
from .unparse import render_sql

__all__ = [
    "Token",
    "tokenize",
    "Parser",
    "parse",
    "Analyzer",
    "analyze",
    "compile_sql",
    "render_sql",
]
