"""Semantic analysis: SQL AST -> normalized :class:`NestedQuery`.

The analyzer resolves table and column references against the database
catalog and SQL's block-scoping rules (a name resolves in the innermost
enclosing block that can supply it), assigns globally unique aliases
(re-aliasing repeated table uses, since the block model requires global
uniqueness), and classifies every WHERE conjunct of every block into the
paper's three categories:

* **linking predicate** — a conjunct containing a subquery (EXISTS /
  IN / quantified comparison); becomes the child block's
  :class:`~repro.core.blocks.LinkSpec`;
* **correlated predicate** — a comparison between a column of the
  current block and a column of an enclosing block; becomes a
  :class:`~repro.core.blocks.Correlation`;
* **local predicate** — everything that references only the current
  block; AND-ed into Δ_i.

Constructs outside the paper's scope (disjunctions containing
subqueries, correlated predicates that are not simple column/column
comparisons, subqueries in the SELECT list, ...) raise
:class:`~repro.errors.AnalysisError` with a message naming the construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError
from ..engine import expressions as ex
from ..engine.catalog import Database
from ..core.blocks import Correlation, LinkSpec, NestedQuery, QueryBlock
from . import ast as A
from .parser import parse


@dataclass
class _Scope:
    """Name-resolution scope for one block: alias -> table name."""

    aliases: Dict[str, str]
    db: Database
    parent: Optional["_Scope"] = None

    def resolve(self, ref: A.ColumnRef) -> Tuple[str, int]:
        """Resolve to (qualified name, scope depth); 0 = current block.

        Depth counts how many blocks outward resolution had to travel —
        depth > 0 means the reference is correlated.
        """
        scope: Optional[_Scope] = self
        depth = 0
        while scope is not None:
            qualified = scope._resolve_local(ref)
            if qualified is not None:
                return qualified, depth
            scope = scope.parent
            depth += 1
        raise AnalysisError(f"unresolved column reference {ref.text!r}")

    def _resolve_local(self, ref: A.ColumnRef) -> Optional[str]:
        if ref.table is not None:
            # by alias first, then by base-table name (SQL allows both)
            if ref.table in self.aliases:
                table = self.db.table(self.aliases[ref.table])
                if any(c.name == ref.column for c in table.schema.columns):
                    return f"{ref.table}.{ref.column}"
                raise AnalysisError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            for alias, table_name in self.aliases.items():
                if table_name == ref.table:
                    table = self.db.table(table_name)
                    if any(c.name == ref.column for c in table.schema.columns):
                        return f"{alias}.{ref.column}"
            return None
        hits = []
        for alias, table_name in self.aliases.items():
            table = self.db.table(table_name)
            if any(c.name == ref.column for c in table.schema.columns):
                hits.append(alias)
        if len(hits) > 1:
            raise AnalysisError(f"ambiguous column reference {ref.column!r}")
        if hits:
            return f"{hits[0]}.{ref.column}"
        return None


class Analyzer:
    """Lowers a parsed SELECT into a :class:`NestedQuery`."""

    def __init__(self, db: Database):
        self.db = db
        self._used_aliases: set = set()

    def analyze(self, stmt: A.SelectStmt) -> NestedQuery:
        root = self._analyze_block(stmt, parent_scope=None, link=None)
        return NestedQuery(root)

    # ------------------------------------------------------------------ #

    def _analyze_block(
        self,
        stmt: A.SelectStmt,
        parent_scope: Optional[_Scope],
        link: Optional[LinkSpec],
    ) -> QueryBlock:
        aliases: Dict[str, str] = {}
        for tref in stmt.tables:
            if not self.db.has_table(tref.name):
                raise AnalysisError(f"unknown table {tref.name!r}")
            alias = self._unique_alias(tref.effective_alias)
            aliases[alias] = tref.name
        scope = _Scope(aliases=aliases, db=self.db, parent=parent_scope)

        select_refs = self._select_list(stmt, scope)

        local: List[ex.Expr] = []
        correlations: List[Correlation] = []
        children: List[QueryBlock] = []
        if stmt.where is not None:
            for conjunct in _conjuncts(stmt.where):
                self._classify(
                    conjunct, scope, local, correlations, children
                )

        if (stmt.order_by or stmt.limit is not None) and parent_scope is not None:
            raise AnalysisError(
                "ORDER BY / LIMIT are only supported on the outermost query"
            )
        order_by: List[Tuple[str, bool]] = []
        for item in stmt.order_by:
            qualified, depth = scope.resolve(item.expr)
            if depth != 0:
                raise AnalysisError(
                    f"ORDER BY item {item.expr.text!r} resolves in an "
                    "enclosing block"
                )
            if qualified not in select_refs:
                raise AnalysisError(
                    f"ORDER BY item {item.expr.text!r} must appear in the "
                    "SELECT list"
                )
            order_by.append((qualified, item.descending))

        block = QueryBlock(
            tables=aliases,
            local_predicate=ex.conjoin(local) if local else None,
            correlations=correlations,
            link=link,
            children=children,
            select_refs=select_refs,
            distinct=stmt.distinct,
            order_by=order_by,
            limit=stmt.limit,
        )
        return block

    def _unique_alias(self, wanted: str) -> str:
        alias = wanted
        suffix = 2
        while alias in self._used_aliases:
            alias = f"{wanted}_{suffix}"
            suffix += 1
        self._used_aliases.add(alias)
        return alias

    def _select_list(self, stmt: A.SelectStmt, scope: _Scope) -> List[str]:
        refs: List[str] = []
        for item in stmt.items:
            if item.star:
                for alias, table_name in scope.aliases.items():
                    for col in self.db.table(table_name).schema.columns:
                        refs.append(f"{alias}.{col.name}")
                continue
            assert item.expr is not None
            qualified, depth = scope.resolve(item.expr)
            if depth != 0:
                raise AnalysisError(
                    f"SELECT item {item.expr.text!r} resolves in an enclosing "
                    "block; correlated SELECT items are not supported"
                )
            refs.append(qualified)
        return refs

    # ------------------------------------------------------------------ #
    # conjunct classification
    # ------------------------------------------------------------------ #

    def _classify(
        self,
        pred: A.Predicate,
        scope: _Scope,
        local: List[ex.Expr],
        correlations: List[Correlation],
        children: List[QueryBlock],
    ) -> None:
        if isinstance(pred, A.ExistsPred):
            link = LinkSpec("not_exists" if pred.negated else "exists")
            children.append(self._analyze_block(pred.subquery, scope, link))
            return
        if isinstance(pred, A.InSubqueryPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            operator = "not_in" if pred.negated else "in"
            theta = "<>" if pred.negated else "="
            link = LinkSpec(operator, outer_ref, theta, inner_ref)
            children.append(self._relink(child, link))
            return
        if isinstance(pred, A.QuantifiedPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            link = LinkSpec(pred.quantifier, outer_ref, pred.op, inner_ref)
            children.append(self._relink(child, link))
            return
        if isinstance(pred, A.NotPred):
            if _contains_subquery(pred.operand):
                raise AnalysisError(
                    "NOT over a subquery predicate is outside the supported "
                    "subset (rewrite as NOT EXISTS / NOT IN / negated theta)"
                )
            local.append(ex.Not(self._predicate_expr(pred.operand, scope)))
            return
        if _contains_subquery(pred):
            raise AnalysisError(
                "subqueries may only appear as top-level WHERE conjuncts "
                "(EXISTS / IN / quantified comparison)"
            )
        # plain predicate: local or correlated
        if isinstance(pred, A.ComparisonPred):
            corr = self._try_correlation(pred, scope)
            if corr is not None:
                correlations.append(corr)
                return
        expr, max_depth = self._predicate_expr_depth(pred, scope)
        if max_depth > 0:
            raise AnalysisError(
                f"correlated predicate {pred!r} is not a simple "
                "column/column comparison; outside the supported subset"
            )
        local.append(expr)

    def _relink(self, block: QueryBlock, link: LinkSpec) -> QueryBlock:
        block.link = link
        return block

    def _linking_column(self, operand: A.ValueExpr, scope: _Scope) -> str:
        if not isinstance(operand, A.ColumnRef):
            raise AnalysisError(
                "the linking attribute must be a plain column reference"
            )
        qualified, _depth = scope.resolve(operand)
        return qualified

    def _subquery_column(
        self, stmt: A.SelectStmt, scope: _Scope
    ) -> Tuple[str, QueryBlock]:
        """Analyze a quantified/IN subquery; its single SELECT item is the
        linked attribute."""
        child = self._analyze_block(stmt, scope, link=None)
        if len(child.select_refs) != 1:
            raise AnalysisError(
                "a subquery used with IN / SOME / ANY / ALL must select "
                f"exactly one column, got {child.select_refs}"
            )
        return child.select_refs[0], child

    def _try_correlation(
        self, pred: A.ComparisonPred, scope: _Scope
    ) -> Optional[Correlation]:
        """Comparison between one inner and one outer column -> Correlation."""
        if not (
            isinstance(pred.left, A.ColumnRef)
            and isinstance(pred.right, A.ColumnRef)
        ):
            return None
        left_q, left_d = scope.resolve(pred.left)
        right_q, right_d = scope.resolve(pred.right)
        if left_d == 0 and right_d > 0:
            from ..engine.types import flip_op

            return Correlation(right_q, flip_op(pred.op), left_q)
        if left_d > 0 and right_d == 0:
            return Correlation(left_q, pred.op, right_q)
        return None

    # ------------------------------------------------------------------ #
    # expression lowering
    # ------------------------------------------------------------------ #

    def _value_expr_depth(
        self, value: A.ValueExpr, scope: _Scope
    ) -> Tuple[ex.Expr, int]:
        if isinstance(value, A.Constant):
            return ex.Literal(value.value), 0
        if isinstance(value, A.ColumnRef):
            qualified, depth = scope.resolve(value)
            return ex.Col(qualified), depth
        if isinstance(value, A.BinaryArith):
            left, dl = self._value_expr_depth(value.left, scope)
            right, dr = self._value_expr_depth(value.right, scope)
            return ex.Arith(value.op, left, right), max(dl, dr)
        raise AnalysisError(f"unsupported value expression {value!r}")

    def _predicate_expr_depth(
        self, pred: A.Predicate, scope: _Scope
    ) -> Tuple[ex.Expr, int]:
        if isinstance(pred, A.ComparisonPred):
            left, dl = self._value_expr_depth(pred.left, scope)
            right, dr = self._value_expr_depth(pred.right, scope)
            return ex.Comparison(pred.op, left, right), max(dl, dr)
        if isinstance(pred, A.BetweenPred):
            operand, d0 = self._value_expr_depth(pred.operand, scope)
            low, d1 = self._value_expr_depth(pred.low, scope)
            high, d2 = self._value_expr_depth(pred.high, scope)
            return ex.Between(operand, low, high), max(d0, d1, d2)
        if isinstance(pred, A.IsNullPred):
            operand, d = self._value_expr_depth(pred.operand, scope)
            return ex.IsNull(operand, negated=pred.negated), d
        if isinstance(pred, A.InListPred):
            operand, d = self._value_expr_depth(pred.operand, scope)
            items = []
            for item in pred.items:
                item_expr, di = self._value_expr_depth(item, scope)
                items.append(item_expr)
                d = max(d, di)
            return ex.InList(operand, tuple(items), negated=pred.negated), d
        if isinstance(pred, A.AndPred):
            left, dl = self._predicate_expr_depth(pred.left, scope)
            right, dr = self._predicate_expr_depth(pred.right, scope)
            return ex.And(left, right), max(dl, dr)
        if isinstance(pred, A.OrPred):
            left, dl = self._predicate_expr_depth(pred.left, scope)
            right, dr = self._predicate_expr_depth(pred.right, scope)
            return ex.Or(left, right), max(dl, dr)
        if isinstance(pred, A.NotPred):
            inner, d = self._predicate_expr_depth(pred.operand, scope)
            return ex.Not(inner), d
        raise AnalysisError(f"unsupported predicate {pred!r}")

    def _predicate_expr(self, pred: A.Predicate, scope: _Scope) -> ex.Expr:
        expr, _depth = self._predicate_expr_depth(pred, scope)
        return expr


def _conjuncts(pred: A.Predicate) -> List[A.Predicate]:
    if isinstance(pred, A.AndPred):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _contains_subquery(pred: A.Predicate) -> bool:
    if isinstance(pred, (A.ExistsPred, A.InSubqueryPred, A.QuantifiedPred)):
        return True
    if isinstance(pred, (A.AndPred, A.OrPred)):
        return _contains_subquery(pred.left) or _contains_subquery(pred.right)
    if isinstance(pred, A.NotPred):
        return _contains_subquery(pred.operand)
    return False


def analyze(stmt: A.SelectStmt, db: Database) -> NestedQuery:
    """Lower a parsed statement into the normalized block model."""
    return Analyzer(db).analyze(stmt)


def compile_sql(text: str, db: Database) -> NestedQuery:
    """Parse + analyze SQL text in one step."""
    return analyze(parse(text), db)
