"""Semantic analysis: SQL AST -> normalized :class:`NestedQuery`.

The analyzer resolves table and column references against the database
catalog and SQL's block-scoping rules (a name resolves in the innermost
enclosing block that can supply it), assigns globally unique aliases
(re-aliasing repeated table uses, since the block model requires global
uniqueness), and classifies every WHERE conjunct of every block into the
paper's three categories:

* **linking predicate** — a conjunct containing a subquery (EXISTS /
  IN / quantified comparison); becomes the child block's
  :class:`~repro.core.blocks.LinkSpec`;
* **correlated predicate** — a comparison between a column of the
  current block and a column of an enclosing block; becomes a
  :class:`~repro.core.blocks.Correlation`;
* **local predicate** — everything that references only the current
  block; AND-ed into Δ_i.

Beyond the paper's core subset the analyzer also lowers:

* **scalar-subquery comparisons** ``lhs θ (SELECT agg(...) ...)`` into
  aggregate links (``LinkSpec(operator="agg")``), flipping θ when the
  subquery appears on the left;
* **disjunctive linking predicates** — a WHERE conjunct that combines
  subqueries under OR / NOT is decomposed into *marked* child links
  plus a residual expression over the mark columns;
* **GROUP BY / HAVING / aggregate select items** — on the root block as
  a post-aggregation spec (the planner applies it over the strategy's
  bag result), and on uncorrelated childless subquery blocks, which are
  aggregated at reduce time.

Constructs still outside the scope (correlated predicates that are not
simple column/column comparisons, aggregates in WHERE, correlated or
grouped scalar subqueries with multiple rows, ...) raise
:class:`~repro.errors.AnalysisError` with a message naming the construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError
from ..engine import expressions as ex
from ..engine.types import flip_op
from ..engine.catalog import Database
from ..core.blocks import (
    AGG_OP,
    AggregateSpec,
    Correlation,
    LinkSpec,
    NestedQuery,
    QueryBlock,
)
from . import ast as A
from .parser import parse


@dataclass
class _Scope:
    """Name-resolution scope for one block: alias -> table name."""

    aliases: Dict[str, str]
    db: Database
    parent: Optional["_Scope"] = None

    def resolve(self, ref: A.ColumnRef) -> Tuple[str, int]:
        """Resolve to (qualified name, scope depth); 0 = current block.

        Depth counts how many blocks outward resolution had to travel —
        depth > 0 means the reference is correlated.
        """
        scope: Optional[_Scope] = self
        depth = 0
        while scope is not None:
            qualified = scope._resolve_local(ref)
            if qualified is not None:
                return qualified, depth
            scope = scope.parent
            depth += 1
        raise AnalysisError(f"unresolved column reference {ref.text!r}")

    def _resolve_local(self, ref: A.ColumnRef) -> Optional[str]:
        if ref.table is not None:
            # by alias first, then by base-table name (SQL allows both)
            if ref.table in self.aliases:
                table = self.db.table(self.aliases[ref.table])
                if any(c.name == ref.column for c in table.schema.columns):
                    return f"{ref.table}.{ref.column}"
                raise AnalysisError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            for alias, table_name in self.aliases.items():
                if table_name == ref.table:
                    table = self.db.table(table_name)
                    if any(c.name == ref.column for c in table.schema.columns):
                        return f"{alias}.{ref.column}"
            return None
        hits = []
        for alias, table_name in self.aliases.items():
            table = self.db.table(table_name)
            if any(c.name == ref.column for c in table.schema.columns):
                hits.append(alias)
        if len(hits) > 1:
            raise AnalysisError(f"ambiguous column reference {ref.column!r}")
        if hits:
            return f"{hits[0]}.{ref.column}"
        return None


class Analyzer:
    """Lowers a parsed SELECT into a :class:`NestedQuery`."""

    def __init__(self, db: Database):
        self.db = db
        self._used_aliases: set = set()
        self._mark_count = 0

    def _next_mark(self) -> str:
        self._mark_count += 1
        return f"_mark{self._mark_count}"

    def analyze(self, stmt: A.SelectStmt) -> NestedQuery:
        root = self._analyze_block(stmt, parent_scope=None, link=None)
        return NestedQuery(root)

    # ------------------------------------------------------------------ #

    def _analyze_block(
        self,
        stmt: A.SelectStmt,
        parent_scope: Optional[_Scope],
        link: Optional[LinkSpec],
    ) -> QueryBlock:
        aliases: Dict[str, str] = {}
        for tref in stmt.tables:
            if not self.db.has_table(tref.name):
                raise AnalysisError(f"unknown table {tref.name!r}")
            alias = self._unique_alias(tref.effective_alias)
            aliases[alias] = tref.name
        scope = _Scope(aliases=aliases, db=self.db, parent=parent_scope)

        group_by: List[str] = []
        for ref in stmt.group_by:
            qualified, depth = scope.resolve(ref)
            if depth != 0:
                raise AnalysisError(
                    f"GROUP BY item {ref.text!r} resolves in an enclosing "
                    "block"
                )
            if qualified not in group_by:
                group_by.append(qualified)
        aggregates: List[AggregateSpec] = []
        grouped = bool(
            group_by
            or stmt.having is not None
            or any(isinstance(i.expr, A.AggregateCall) for i in stmt.items)
        )

        if grouped:
            select_refs, output_refs = self._grouped_select_list(
                stmt, scope, group_by, aggregates,
                is_root=parent_scope is None,
            )
        else:
            select_refs = self._select_list(stmt, scope)
            output_refs = []

        local: List[ex.Expr] = []
        correlations: List[Correlation] = []
        children: List[QueryBlock] = []
        residual_parts: List[ex.Expr] = []
        if stmt.where is not None:
            for conjunct in _conjuncts(stmt.where):
                self._classify(
                    conjunct, scope, local, correlations, children,
                    residual_parts,
                )

        having: Optional[ex.Expr] = None
        if stmt.having is not None:
            having = self._lower_having(
                stmt.having, scope, group_by, aggregates
            )
        if grouped:
            # aggregates mentioned only in HAVING still need their input
            # columns in the pre-aggregation projection
            for spec in aggregates:
                if spec.arg is not None and spec.arg not in select_refs:
                    select_refs.append(spec.arg)

        if (stmt.order_by or stmt.limit is not None) and parent_scope is not None:
            raise AnalysisError(
                "ORDER BY / LIMIT are only supported on the outermost query"
            )
        order_by: List[Tuple[str, bool]] = []
        for item in stmt.order_by:
            qualified, depth = scope.resolve(item.expr)
            if depth != 0:
                raise AnalysisError(
                    f"ORDER BY item {item.expr.text!r} resolves in an "
                    "enclosing block"
                )
            visible = output_refs if grouped else select_refs
            if qualified not in visible:
                raise AnalysisError(
                    f"ORDER BY item {item.expr.text!r} must appear in the "
                    "SELECT list"
                )
            order_by.append((qualified, item.descending))

        block = QueryBlock(
            tables=aliases,
            local_predicate=ex.conjoin(local) if local else None,
            correlations=correlations,
            link=link,
            children=children,
            select_refs=select_refs,
            distinct=stmt.distinct,
            order_by=order_by,
            limit=stmt.limit,
            group_by=group_by,
            aggregates=aggregates,
            having=having,
            output_refs=output_refs,
            residual=ex.conjoin(residual_parts) if residual_parts else None,
        )
        return block

    def _unique_alias(self, wanted: str) -> str:
        alias = wanted
        suffix = 2
        while alias in self._used_aliases:
            alias = f"{wanted}_{suffix}"
            suffix += 1
        self._used_aliases.add(alias)
        return alias

    def _select_list(self, stmt: A.SelectStmt, scope: _Scope) -> List[str]:
        refs: List[str] = []
        for item in stmt.items:
            if item.star:
                for alias, table_name in scope.aliases.items():
                    for col in self.db.table(table_name).schema.columns:
                        refs.append(f"{alias}.{col.name}")
                continue
            assert item.expr is not None
            if isinstance(item.expr, A.AggregateCall):
                raise AnalysisError(
                    "aggregate SELECT items in a subquery are only "
                    "supported as scalar subqueries (single aggregate item)"
                )
            qualified, depth = scope.resolve(item.expr)
            if depth != 0:
                raise AnalysisError(
                    f"SELECT item {item.expr.text!r} resolves in an enclosing "
                    "block; correlated SELECT items are not supported"
                )
            refs.append(qualified)
        return refs

    def _grouped_select_list(
        self,
        stmt: A.SelectStmt,
        scope: _Scope,
        group_by: List[str],
        aggregates: List[AggregateSpec],
        is_root: bool,
    ) -> Tuple[List[str], List[str]]:
        """SELECT list of a grouped block -> (input refs, output refs).

        *input refs* (``select_refs``) feed the aggregation: the group
        keys plus every aggregate argument, as a bag so COUNT and SUM
        see SQL multiplicities.  *output refs* name the final projected
        columns in SELECT order (group keys and synthetic aggregate
        names).  Subquery blocks expose exactly one group key.
        """
        if stmt.distinct:
            raise AnalysisError(
                "DISTINCT cannot be combined with GROUP BY / aggregates"
            )
        output_refs: List[str] = []
        for item in stmt.items:
            if item.star:
                raise AnalysisError(
                    "SELECT * cannot be combined with GROUP BY / aggregates"
                )
            assert item.expr is not None
            if isinstance(item.expr, A.AggregateCall):
                output_refs.append(
                    self._agg_output(item.expr, scope, aggregates)
                )
                continue
            qualified, depth = scope.resolve(item.expr)
            if depth != 0:
                raise AnalysisError(
                    f"SELECT item {item.expr.text!r} resolves in an "
                    "enclosing block; correlated SELECT items are not "
                    "supported"
                )
            if qualified not in group_by:
                raise AnalysisError(
                    f"SELECT item {item.expr.text!r} must appear in "
                    "GROUP BY when aggregates are present"
                )
            output_refs.append(qualified)
        if not is_root:
            non_agg = [r for r in output_refs if r in group_by]
            if len(stmt.items) != 1 or len(non_agg) != 1:
                raise AnalysisError(
                    "a grouped subquery must select exactly one grouping "
                    "column (its linked attribute)"
                )
        select_refs = list(group_by)
        for spec in aggregates:
            if spec.arg is not None and spec.arg not in select_refs:
                select_refs.append(spec.arg)
        if not select_refs:
            # a pure global aggregate (e.g. SELECT count(*) FROM ...):
            # any column carries the row multiplicity to the post-pass
            alias, table_name = next(iter(scope.aliases.items()))
            first = self.db.table(table_name).schema.columns[0].name
            select_refs = [f"{alias}.{first}"]
        return select_refs, output_refs

    def _agg_output(
        self,
        call: A.AggregateCall,
        scope: _Scope,
        aggregates: List[AggregateSpec],
    ) -> str:
        """Register an aggregate call; return its synthetic output name."""
        if call.star:
            func, arg = "count_star", None
            name = "count(*)"
        else:
            assert call.arg is not None
            qualified, depth = scope.resolve(call.arg)
            if depth != 0:
                raise AnalysisError(
                    f"aggregate argument {call.arg.text!r} resolves in an "
                    "enclosing block"
                )
            func, arg = call.func, qualified
            name = f"{func}({qualified})"
        for spec in aggregates:
            if spec.name == name:
                return name
        aggregates.append(AggregateSpec(func, arg, name))
        return name

    def _lower_having(
        self,
        pred: A.Predicate,
        scope: _Scope,
        group_by: List[str],
        aggregates: List[AggregateSpec],
    ) -> ex.Expr:
        """Lower HAVING over the grouped schema (keys + aggregate names)."""

        def value(v: A.ValueExpr) -> ex.Expr:
            if isinstance(v, A.Constant):
                return ex.Literal(v.value)
            if isinstance(v, A.AggregateCall):
                return ex.Col(self._agg_output(v, scope, aggregates))
            if isinstance(v, A.ColumnRef):
                qualified, depth = scope.resolve(v)
                if depth != 0:
                    raise AnalysisError(
                        f"HAVING item {v.text!r} resolves in an enclosing "
                        "block"
                    )
                if qualified not in group_by:
                    raise AnalysisError(
                        f"HAVING column {v.text!r} must appear in GROUP BY "
                        "or inside an aggregate"
                    )
                return ex.Col(qualified)
            if isinstance(v, A.BinaryArith):
                return ex.Arith(v.op, value(v.left), value(v.right))
            raise AnalysisError(
                f"unsupported HAVING value expression {v!r}"
            )

        def lower(p: A.Predicate) -> ex.Expr:
            if isinstance(p, A.ComparisonPred):
                return ex.Comparison(p.op, value(p.left), value(p.right))
            if isinstance(p, A.BetweenPred):
                return ex.Between(
                    value(p.operand), value(p.low), value(p.high)
                )
            if isinstance(p, A.IsNullPred):
                return ex.IsNull(value(p.operand), negated=p.negated)
            if isinstance(p, A.InListPred):
                return ex.InList(
                    value(p.operand),
                    tuple(value(i) for i in p.items),
                    negated=p.negated,
                )
            if isinstance(p, A.AndPred):
                return ex.And(lower(p.left), lower(p.right))
            if isinstance(p, A.OrPred):
                return ex.Or(lower(p.left), lower(p.right))
            if isinstance(p, A.NotPred):
                return ex.Not(lower(p.operand))
            raise AnalysisError(
                "subqueries are not supported inside HAVING"
            )

        return lower(pred)

    # ------------------------------------------------------------------ #
    # conjunct classification
    # ------------------------------------------------------------------ #

    def _classify(
        self,
        pred: A.Predicate,
        scope: _Scope,
        local: List[ex.Expr],
        correlations: List[Correlation],
        children: List[QueryBlock],
        residual_parts: List[ex.Expr],
    ) -> None:
        if isinstance(pred, A.ExistsPred):
            link = LinkSpec("not_exists" if pred.negated else "exists")
            children.append(self._analyze_block(pred.subquery, scope, link))
            return
        if isinstance(pred, A.InSubqueryPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            operator = "not_in" if pred.negated else "in"
            theta = "<>" if pred.negated else "="
            link = LinkSpec(operator, outer_ref, theta, inner_ref)
            children.append(self._relink(child, link))
            return
        if isinstance(pred, A.QuantifiedPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            link = LinkSpec(pred.quantifier, outer_ref, pred.op, inner_ref)
            children.append(self._relink(child, link))
            return
        if isinstance(pred, A.ComparisonPred) and _comparison_subquery(pred):
            children.append(self._scalar_link(pred, scope, mark=None))
            return
        if isinstance(pred, A.NotPred):
            if _contains_subquery(pred.operand):
                residual_parts.append(
                    ex.Not(self._lower_disjunct(pred.operand, scope, children))
                )
                return
            local.append(ex.Not(self._predicate_expr(pred.operand, scope)))
            return
        if _contains_subquery(pred):
            # OR (or nested AND) combining subqueries with other
            # predicates: decompose into marked child links plus a
            # residual expression over the marks
            residual_parts.append(self._lower_disjunct(pred, scope, children))
            return
        # plain predicate: local or correlated
        if isinstance(pred, A.ComparisonPred):
            corr = self._try_correlation(pred, scope)
            if corr is not None:
                correlations.append(corr)
                return
        expr, max_depth = self._predicate_expr_depth(pred, scope)
        if max_depth > 0:
            raise AnalysisError(
                f"correlated predicate {pred!r} is not a simple "
                "column/column comparison; outside the supported subset"
            )
        local.append(expr)

    def _lower_disjunct(
        self,
        pred: A.Predicate,
        scope: _Scope,
        children: List[QueryBlock],
    ) -> ex.Expr:
        """Lower a subquery-bearing predicate under OR / NOT.

        Each subquery predicate becomes a *marked* child link; its
        three-valued verdict surfaces as a mark column the returned
        expression references (paper tree expressions, extended with
        disjunctive linking predicates).
        """
        if isinstance(pred, A.ExistsPred):
            mark = self._next_mark()
            link = LinkSpec(
                "not_exists" if pred.negated else "exists", mark=mark
            )
            children.append(self._analyze_block(pred.subquery, scope, link))
            return ex.Col(mark)
        if isinstance(pred, A.InSubqueryPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            mark = self._next_mark()
            link = LinkSpec(
                "not_in" if pred.negated else "in",
                outer_ref,
                "<>" if pred.negated else "=",
                inner_ref,
                mark=mark,
            )
            children.append(self._relink(child, link))
            return ex.Col(mark)
        if isinstance(pred, A.QuantifiedPred):
            outer_ref = self._linking_column(pred.operand, scope)
            inner_ref, child = self._subquery_column(pred.subquery, scope)
            mark = self._next_mark()
            link = LinkSpec(
                pred.quantifier, outer_ref, pred.op, inner_ref, mark=mark
            )
            children.append(self._relink(child, link))
            return ex.Col(mark)
        if isinstance(pred, A.ComparisonPred) and _comparison_subquery(pred):
            mark = self._next_mark()
            children.append(self._scalar_link(pred, scope, mark=mark))
            return ex.Col(mark)
        if isinstance(pred, A.AndPred):
            return ex.And(
                self._lower_disjunct(pred.left, scope, children),
                self._lower_disjunct(pred.right, scope, children),
            )
        if isinstance(pred, A.OrPred):
            return ex.Or(
                self._lower_disjunct(pred.left, scope, children),
                self._lower_disjunct(pred.right, scope, children),
            )
        if isinstance(pred, A.NotPred):
            return ex.Not(self._lower_disjunct(pred.operand, scope, children))
        expr, depth = self._predicate_expr_depth(pred, scope)
        if depth > 0:
            raise AnalysisError(
                f"correlated predicate {pred!r} under OR/NOT is outside "
                "the supported subset"
            )
        return expr

    def _scalar_link(
        self, pred: A.ComparisonPred, scope: _Scope, mark: Optional[str]
    ) -> QueryBlock:
        """``lhs θ (SELECT agg(...))`` -> an aggregate-linked child block."""
        if isinstance(pred.left, A.ScalarSubquery) and isinstance(
            pred.right, A.ScalarSubquery
        ):
            raise AnalysisError(
                "comparing two scalar subqueries is not supported"
            )
        if isinstance(pred.right, A.ScalarSubquery):
            sub, outer, theta = pred.right.subquery, pred.left, pred.op
        else:
            assert isinstance(pred.left, A.ScalarSubquery)
            sub, outer, theta = pred.left.subquery, pred.right, flip_op(pred.op)
        outer_ref: Optional[str] = None
        outer_const: Optional[Tuple[object]] = None
        if isinstance(outer, A.ColumnRef):
            outer_ref = self._linking_column(outer, scope)
        elif isinstance(outer, A.Constant):
            outer_const = (outer.value,)
        else:
            raise AnalysisError(
                "a scalar subquery can only be compared against a plain "
                "column or a literal"
            )
        agg_func, inner_ref, child = self._scalar_subquery(sub, scope)
        link = LinkSpec(
            AGG_OP,
            outer_ref,
            theta,
            inner_ref,
            agg_func=agg_func,
            outer_const=outer_const,
            mark=mark,
        )
        return self._relink(child, link)

    def _scalar_subquery(
        self, stmt: A.SelectStmt, scope: _Scope
    ) -> Tuple[str, Optional[str], QueryBlock]:
        """Analyze ``(SELECT agg(...) FROM ...)``.

        Returns ``(agg_func, inner_ref, child_block)`` where *inner_ref*
        is the qualified aggregate argument (None for ``COUNT(*)``).
        The single ungrouped aggregate item guarantees exactly one row.
        """
        if stmt.group_by or stmt.having is not None:
            raise AnalysisError(
                "a scalar subquery must not use GROUP BY / HAVING (it "
                "could yield more than one row)"
            )
        if stmt.distinct:
            raise AnalysisError("a scalar subquery must not use DISTINCT")
        if len(stmt.items) != 1 or not isinstance(
            stmt.items[0].expr, A.AggregateCall
        ):
            raise AnalysisError(
                "a scalar subquery must select exactly one aggregate"
            )
        call = stmt.items[0].expr
        if call.star:
            inner_items: Tuple[A.SelectItem, ...] = ()
            agg_func = "count_star"
        else:
            inner_items = (A.SelectItem(expr=call.arg),)
            agg_func = call.func
        child = self._analyze_block(
            replace(stmt, items=inner_items), scope, link=None
        )
        inner_ref = child.select_refs[0] if child.select_refs else None
        return agg_func, inner_ref, child

    def _relink(self, block: QueryBlock, link: LinkSpec) -> QueryBlock:
        block.link = link
        return block

    def _linking_column(self, operand: A.ValueExpr, scope: _Scope) -> str:
        if not isinstance(operand, A.ColumnRef):
            raise AnalysisError(
                "the linking attribute must be a plain column reference"
            )
        qualified, _depth = scope.resolve(operand)
        return qualified

    def _subquery_column(
        self, stmt: A.SelectStmt, scope: _Scope
    ) -> Tuple[str, QueryBlock]:
        """Analyze a quantified/IN subquery; its single SELECT item is the
        linked attribute."""
        child = self._analyze_block(stmt, scope, link=None)
        if child.group_by or child.aggregates or child.having is not None:
            # _grouped_select_list guarantees exactly one selected group
            # key; the reduce-time aggregation projects it out
            keys = [r for r in child.output_refs if r in child.group_by]
            return keys[0], child
        if len(child.select_refs) != 1:
            raise AnalysisError(
                "a subquery used with IN / SOME / ANY / ALL must select "
                f"exactly one column, got {child.select_refs}"
            )
        return child.select_refs[0], child

    def _try_correlation(
        self, pred: A.ComparisonPred, scope: _Scope
    ) -> Optional[Correlation]:
        """Comparison between one inner and one outer column -> Correlation."""
        if not (
            isinstance(pred.left, A.ColumnRef)
            and isinstance(pred.right, A.ColumnRef)
        ):
            return None
        left_q, left_d = scope.resolve(pred.left)
        right_q, right_d = scope.resolve(pred.right)
        if left_d == 0 and right_d > 0:
            from ..engine.types import flip_op

            return Correlation(right_q, flip_op(pred.op), left_q)
        if left_d > 0 and right_d == 0:
            return Correlation(left_q, pred.op, right_q)
        return None

    # ------------------------------------------------------------------ #
    # expression lowering
    # ------------------------------------------------------------------ #

    def _value_expr_depth(
        self, value: A.ValueExpr, scope: _Scope
    ) -> Tuple[ex.Expr, int]:
        if isinstance(value, A.Constant):
            return ex.Literal(value.value), 0
        if isinstance(value, A.ColumnRef):
            qualified, depth = scope.resolve(value)
            return ex.Col(qualified), depth
        if isinstance(value, A.BinaryArith):
            left, dl = self._value_expr_depth(value.left, scope)
            right, dr = self._value_expr_depth(value.right, scope)
            return ex.Arith(value.op, left, right), max(dl, dr)
        if isinstance(value, A.ScalarSubquery):
            raise AnalysisError(
                "scalar subqueries may only appear as one side of a "
                "comparison predicate"
            )
        if isinstance(value, A.AggregateCall):
            raise AnalysisError(
                "aggregates are only allowed in the SELECT list, in "
                "HAVING, or in a scalar subquery — not in WHERE"
            )
        raise AnalysisError(f"unsupported value expression {value!r}")

    def _predicate_expr_depth(
        self, pred: A.Predicate, scope: _Scope
    ) -> Tuple[ex.Expr, int]:
        if isinstance(pred, A.ComparisonPred):
            left, dl = self._value_expr_depth(pred.left, scope)
            right, dr = self._value_expr_depth(pred.right, scope)
            return ex.Comparison(pred.op, left, right), max(dl, dr)
        if isinstance(pred, A.BetweenPred):
            operand, d0 = self._value_expr_depth(pred.operand, scope)
            low, d1 = self._value_expr_depth(pred.low, scope)
            high, d2 = self._value_expr_depth(pred.high, scope)
            return ex.Between(operand, low, high), max(d0, d1, d2)
        if isinstance(pred, A.IsNullPred):
            operand, d = self._value_expr_depth(pred.operand, scope)
            return ex.IsNull(operand, negated=pred.negated), d
        if isinstance(pred, A.InListPred):
            operand, d = self._value_expr_depth(pred.operand, scope)
            items = []
            for item in pred.items:
                item_expr, di = self._value_expr_depth(item, scope)
                items.append(item_expr)
                d = max(d, di)
            return ex.InList(operand, tuple(items), negated=pred.negated), d
        if isinstance(pred, A.AndPred):
            left, dl = self._predicate_expr_depth(pred.left, scope)
            right, dr = self._predicate_expr_depth(pred.right, scope)
            return ex.And(left, right), max(dl, dr)
        if isinstance(pred, A.OrPred):
            left, dl = self._predicate_expr_depth(pred.left, scope)
            right, dr = self._predicate_expr_depth(pred.right, scope)
            return ex.Or(left, right), max(dl, dr)
        if isinstance(pred, A.NotPred):
            inner, d = self._predicate_expr_depth(pred.operand, scope)
            return ex.Not(inner), d
        raise AnalysisError(f"unsupported predicate {pred!r}")

    def _predicate_expr(self, pred: A.Predicate, scope: _Scope) -> ex.Expr:
        expr, _depth = self._predicate_expr_depth(pred, scope)
        return expr


def _conjuncts(pred: A.Predicate) -> List[A.Predicate]:
    if isinstance(pred, A.AndPred):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _comparison_subquery(pred: A.ComparisonPred) -> bool:
    """Whether either side of a comparison is a scalar subquery."""
    return isinstance(pred.left, A.ScalarSubquery) or isinstance(
        pred.right, A.ScalarSubquery
    )


def _contains_subquery(pred: A.Predicate) -> bool:
    if isinstance(pred, (A.ExistsPred, A.InSubqueryPred, A.QuantifiedPred)):
        return True
    if isinstance(pred, A.ComparisonPred):
        return _comparison_subquery(pred)
    if isinstance(pred, (A.AndPred, A.OrPred)):
        return _contains_subquery(pred.left) or _contains_subquery(pred.right)
    if isinstance(pred, A.NotPred):
        return _contains_subquery(pred.operand)
    return False


def analyze(stmt: A.SelectStmt, db: Database) -> NestedQuery:
    """Lower a parsed statement into the normalized block model."""
    return Analyzer(db).analyze(stmt)


def compile_sql(text: str, db: Database) -> NestedQuery:
    """Parse + analyze SQL text in one step."""
    return analyze(parse(text), db)
