#!/usr/bin/env python
"""TPC-H workload tour: the paper's three benchmark queries.

Generates a small deterministic TPC-H database, runs Query 1, Query 2
(both variants) and Query 3 (all nine combinations) through the nested
relational strategies and the System A emulation, printing results,
chosen plans and cost counters.

Run:  python examples/tpch_subqueries.py [scale_factor]
"""

from __future__ import annotations

import sys

import repro
from repro.baselines.native import SystemAEmulationStrategy
from repro.engine.metrics import collect
from repro.tpch import (
    TpchConfig,
    generate,
    pick_availqty,
    pick_date_window,
    pick_size_window,
    query1,
    query2,
    query3,
)


def run(sql: str, db, label: str) -> None:
    query = repro.compile_sql(sql, db)
    print(f"\n--- {label} ---")
    print(query.describe())
    print("System A emulation plan:")
    print("  " + SystemAEmulationStrategy().explain(query, db).replace("\n", "\n  "))
    oracle = repro.core.planner.run(query, db, strategy="nested-iteration").sorted()
    for strategy in ("nested-relational-optimized", "system-a-native", "auto"):
        with collect() as metrics:
            result = repro.core.planner.run(query, db, strategy=strategy).sorted()
        status = "ok" if result == oracle else "*** WRONG ***"
        print(
            f"  {strategy:32s} rows={len(result):4d} {status}  "
            f"weighted-cost={metrics.weighted_cost():>9d}"
        )


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"Generating TPC-H at scale factor {sf} ...")
    db = generate(TpchConfig(scale_factor=sf, seed=7))
    print(db.summary())

    # Query 1: one-level ALL, block size controlled by the date window.
    lo, hi = pick_date_window(db, max(10, len(db.relation("orders")) // 20))
    run(query1(lo, hi), db, f"Query 1 (orders in [{lo}, {hi}))")

    # Query 2: two-level linear; ANY (2a) and ALL (2b).
    size_lo, size_hi = pick_size_window(db, max(10, len(db.relation("part")) // 4))
    availqty = pick_availqty(db, max(10, len(db.relation("partsupp")) // 10))
    run(query2("any", size_lo, size_hi, availqty, 25), db, "Query 2a (ANY / NOT EXISTS)")
    run(query2("all", size_lo, size_hi, availqty, 25), db, "Query 2b (ALL / NOT EXISTS)")

    # Query 3: tree-correlated; all paper combinations.
    for quantifier, existential, tag in (
        ("all", "exists", "3a"),
        ("all", "not exists", "3b"),
        ("any", "exists", "3c"),
    ):
        for variant in "abc":
            run(
                query3(quantifier, existential, variant,
                       size_lo, size_hi, availqty, 25),
                db,
                f"Query {tag}({variant}) ({quantifier.upper()} / "
                f"{existential.upper()})",
            )
    print("\nAll strategies agreed with the tuple-iteration oracle.")


if __name__ == "__main__":
    main()
