#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the relations R, S, T of the paper's Figure 1, shows the extended
nested relational algebra working step by step (outer joins -> nest ->
linking selections, Figures 1-2), then runs the full Query Q of
Section 2 through several evaluation strategies and checks they agree.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.core.linking import SetPredicate
from repro.core.nest import nest
from repro.core.selection import linking_selection, pseudo_selection
from repro.engine import Column, Database, NULL
from repro.engine.expressions import Col, Comparison
from repro.engine.operators import LeftOuterHashJoin, as_relation


def build_paper_database() -> Database:
    """Figure 1's relations, NULLs included (D, I, L are the keys)."""
    db = Database()
    db.create_table(
        "R",
        [Column("A"), Column("B"), Column("C"), Column("D", not_null=True)],
        [(1, 2, 3, 1), (2, 3, 2, 2), (5, 2, 3, 3), (NULL, NULL, 5, 4)],
        primary_key="D",
    )
    db.create_table(
        "S",
        [Column("E"), Column("F"), Column("G"), Column("H"), Column("I", not_null=True)],
        [(7, 5, 1, 5, 1), (2, 5, 2, 2, 2), (2, 5, 3, 4, 3), (4, 6, 3, NULL, 4)],
        primary_key="I",
    )
    db.create_table(
        "T",
        [Column("J"), Column("K"), Column("L", not_null=True)],
        [(3, 3, 1), (NULL, 4, 2), (2, 2, 3)],
        primary_key="L",
    )
    return db


QUERY_Q = """
select R.B, R.C, R.D
from R
where R.A > 1
  and R.B not in
    (select S.E from S
     where S.F = 5 and R.D = S.G
       and S.H > all
         (select T.J from T
          where T.K = R.C and T.L <> S.I))
"""


def algebra_walkthrough(db: Database) -> None:
    """Reproduce Figures 1(d) and 2 with the algebra operators."""
    print("=" * 72)
    print("Extended nested relational algebra, step by step (Figures 1-2)")
    print("=" * 72)

    r, s, t = db.relation("R"), db.relation("S"), db.relation("T")

    print("\n-- Temp1: (R LEFT JOIN S ON R.D=S.G) LEFT JOIN T "
          "ON T.K=R.C AND T.L<>S.I, projected --")
    rs = LeftOuterHashJoin(r, s, ["R.D"], ["S.G"])
    rst = LeftOuterHashJoin(
        rs, t, ["R.C"], ["T.K"],
        residual=Comparison("<>", Col("T.L"), Col("S.I")),
    )
    temp1 = as_relation(rst).project(
        ["R.B", "R.C", "R.D", "S.E", "S.H", "S.I", "T.J", "T.L"]
    )
    print(temp1.to_table())

    print("\n-- Temp2: nest by {R.B,R.C,R.D,S.E,S.H,S.I} keeping {T.J,T.L} --")
    temp2 = nest(
        temp1,
        by=["R.B", "R.C", "R.D", "S.E", "S.H", "S.I"],
        keep=["T.J", "T.L"],
    )
    print(temp2.to_table())

    print("\n-- Temp3: pseudo-selection sigma*_{S.H > ALL {T.J}}, "
          "padding {S.E,S.H,S.I} on failure --")
    temp3 = pseudo_selection(
        temp2, SetPredicate("all", ">"), "S.H", "T.J",
        pk_ref="T.L", pad_refs=["S.E", "S.H", "S.I"],
    )
    print(temp3.to_table())
    print("note: the failing S tuple is padded, not dropped — its R tuple")
    print("      must survive for the NOT IN test one level up.")

    print("\n-- Temp4: strict selection sigma_{S.H > ALL {T.J}} --")
    temp4 = linking_selection(
        temp2, SetPredicate("all", ">"), "S.H", "T.J", pk_ref="T.L"
    )
    print(temp4.to_table())


def run_query_q(db: Database) -> None:
    print()
    print("=" * 72)
    print("Query Q (Section 2) through every applicable strategy")
    print("=" * 72)
    query = repro.compile_sql(QUERY_Q, db)
    print("\nQuery structure:")
    print(query.describe())
    print("\nTree expression (Figure 3a):")
    print(repro.TreeExpression(query).render())

    print("\nResults:")
    reference = None
    for strategy in (
        "nested-iteration",
        "nested-relational",
        "nested-relational-optimized",
        "system-a-native",
        "auto",
    ):
        result = repro.core.planner.run(query, db, strategy=strategy).sorted()
        marker = ""
        if reference is None:
            reference = result
        elif result == reference:
            marker = "  (agrees with oracle)"
        else:
            marker = "  *** MISMATCH ***"
        print(f"  {strategy:32s} -> {result.rows}{marker}")
    print("\nExpected: only (B=3, C=2, D=2) qualifies — the S tuple of the")
    print("other candidate passes its inner ALL test, so R.B = 2 IN {2}.")


def main() -> None:
    db = build_paper_database()
    print("Database:")
    print(db.summary())
    print()
    algebra_walkthrough(db)
    run_query_q(db)


if __name__ == "__main__":
    main()
