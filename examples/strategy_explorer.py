#!/usr/bin/env python
"""Strategy explorer: how query shape drives plan choice.

Feeds a spectrum of query shapes (flat, one-level, linear, linearly
correlated, tree-shaped, positive-only, negative, mixed) through the
automatic planner, printing for each: the shape classification, the
strategy ``auto`` picks, the System A emulation's plan, and a cost
comparison across all applicable strategies.

Run:  python examples/strategy_explorer.py
"""

from __future__ import annotations

import repro
from repro.baselines import (
    BooleanAggregateStrategy,
    ClassicalUnnestingStrategy,
    CountRewriteStrategy,
)
from repro.baselines.native import SystemAEmulationStrategy
from repro.core.planner import choose_strategy, make_strategy
from repro.engine import Column, Database, NULL
from repro.engine.metrics import collect
from repro.errors import PlanError, UnsoundRewriteError


def build_db() -> Database:
    db = Database()
    db.create_table(
        "r",
        [Column("k", not_null=True), Column("a"), Column("b")],
        [(i, i % 7, i % 5) for i in range(60)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("v")],
        [(i, i % 60, (i * 3) % 11 if i % 9 else NULL) for i in range(180)],
        primary_key="k",
    )
    db.create_table(
        "t",
        [Column("k", not_null=True), Column("sk"), Column("w")],
        [(i, i % 180, i % 13) for i in range(240)],
        primary_key="k",
    )
    db.create_hash_index("s", ["rk"])
    db.create_hash_index("t", ["sk"])
    return db


SHAPES = [
    ("flat", "select r.k from r where r.a > 3"),
    (
        "one-level positive (IN)",
        "select r.k from r where r.a in (select s.v from s where s.rk = r.k)",
    ),
    (
        "one-level negative (NOT IN)",
        "select r.k from r where r.a not in (select s.v from s where s.rk = r.k)",
    ),
    (
        "two-level linearly correlated (ALL / NOT EXISTS)",
        """select r.k from r where r.a > all
           (select s.v from s where s.rk = r.k and not exists
              (select * from t where t.sk = s.k))""",
    ),
    (
        "two-level, inner block correlated to the root (paper Query 3 shape)",
        """select r.k from r where r.a > all
           (select s.v from s where s.rk = r.k and exists
              (select * from t where t.sk = s.k and t.w <> r.b))""",
    ),
    (
        "tree query (two subqueries in one block, mixed operators)",
        """select r.k from r
           where exists (select * from s where s.rk = r.k)
             and r.b not in (select t.w from t where t.sk = r.k)""",
    ),
]

ALL_STRATEGIES = [
    "nested-iteration",
    "nested-relational",
    "nested-relational-optimized",
    "nested-relational-bottomup",
    "nested-relational-positive-rewrite",
    "classical-unnesting",
    "count-rewrite",
    "boolean-aggregate",
    "system-a-native",
]


def main() -> None:
    db = build_db()
    for label, sql in SHAPES:
        query = repro.compile_sql(sql, db)
        print("=" * 72)
        print(f"{label}")
        print("=" * 72)
        print(query.describe())
        print(f"auto picks: {type(choose_strategy(query)).__name__}")
        if query.nesting_depth > 0:
            print("System A plan:")
            print(
                "  "
                + SystemAEmulationStrategy()
                .explain(query, db)
                .replace("\n", "\n  ")
            )
        oracle = repro.core.planner.run(query, db, strategy="nested-iteration").sorted()
        print(f"{'strategy':40s} {'rows':>5s} {'weighted cost':>14s}")
        for name in ALL_STRATEGIES:
            strategy = make_strategy(name)
            applicable = getattr(strategy, "applicable", None)
            try:
                with collect() as metrics:
                    result = strategy.execute(query, db).sorted()
            except (PlanError, UnsoundRewriteError) as error:
                reason = str(error).split(";")[0]
                print(f"{name:40s}   n/a  ({reason[:60]})")
                continue
            status = "" if result == oracle else "  *** WRONG ***"
            print(
                f"{name:40s} {len(result):5d} {metrics.weighted_cost():>14d}"
                f"{status}"
            )
        print()


if __name__ == "__main__":
    main()
