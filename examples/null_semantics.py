#!/usr/bin/env python
"""NULL semantics: why classical unnesting is unsound — and how the
nested relational approach stays correct.

Walks the paper's Section 2 argument concretely:

1. ``R.A = 5`` against ``S.B = {2, 3, 4, NULL}``: the ALL predicate is
   UNKNOWN, but the MAX rewrite and the antijoin rewrite both say TRUE.
2. The guarded classical strategy refuses the rewrite (raises
   UnsoundRewriteError); unguarded, it returns the wrong rows.
3. The nested relational approach gets it right *without* any NOT NULL
   constraint, because empty sets are detected with primary-key NULL
   markers and genuine NULL members stay in the set.

Run:  python examples/null_semantics.py
"""

from __future__ import annotations

import repro
from repro.baselines import ClassicalUnnestingStrategy
from repro.engine import Column, Database, NULL
from repro.errors import UnsoundRewriteError


def build_db() -> Database:
    db = Database()
    db.create_table(
        "r",
        [Column("k", not_null=True), Column("a", not_null=True)],
        [(1, 5), (2, 2), (3, 7)],
        primary_key="k",
    )
    db.create_table(
        "s",
        [Column("k", not_null=True), Column("rk"), Column("b")],  # b is NULLable
        [
            (1, 1, 2), (2, 1, 3), (3, 1, 4), (4, 1, NULL),  # r1 sees {2,3,4,NULL}
            (5, 2, 1),                                      # r2 sees {1}
            # r3 sees the empty set
        ],
        primary_key="k",
    )
    return db


SQL = "select r.k from r where r.a > all (select s.b from s where s.rk = r.k)"


def main() -> None:
    db = build_db()
    print("Data: r1.a=5 vs S.B={2,3,4,NULL}; r2.a=2 vs {1}; r3.a=7 vs {}")
    print(f"\nQuery: {SQL}\n")

    print("SQL truth, tuple by tuple:")
    print("  r1: 5 > ALL {2,3,4,NULL}  -> UNKNOWN (NULL comparison) -> excluded")
    print("  r2: 2 > ALL {1}           -> TRUE                      -> included")
    print("  r3: 7 > ALL {}            -> TRUE  (vacuous)           -> included")

    query = repro.connect(db).prepare(SQL)
    oracle = query.execute(strategy="nested-iteration").sorted()
    print(f"\nTuple-iteration oracle:        {oracle.rows}")

    nr = query.execute(strategy="nested-relational").sorted()
    print(f"Nested relational approach:    {nr.rows}  "
          f"{'(correct)' if nr == oracle else '(WRONG)'}")

    print("\nClassical ALL -> antijoin rewrite:")
    guarded = ClassicalUnnestingStrategy()
    try:
        guarded.execute(repro.compile_sql(SQL, db), db)
    except UnsoundRewriteError as error:
        print(f"  guarded strategy refuses:    {error}")

    unguarded = ClassicalUnnestingStrategy(respect_null_soundness=False)
    wrong = unguarded.execute(repro.compile_sql(SQL, db), db).sorted()
    print(f"  unguarded antijoin returns:  {wrong.rows}   "
          f"<- r1 wrongly included!")

    print("\nWhy the rewrites fail (paper Section 2):")
    print("  R.A > ALL (SELECT S.B ...)  is NOT an antijoin on R.A <= S.B:")
    print("  no S row with B <= 5 exists non-NULL-ly, so the antijoin keeps")
    print("  r1 — but SQL's three-valued logic says the predicate is UNKNOWN.")
    print("  The MAX rewrite (R.A > MAX(S.B)) fails the same way: MAX")
    print("  ignores NULLs, giving 5 > 4 = TRUE.")

    print("\nHow the nested relational approach distinguishes {} from {NULL}:")
    query = repro.compile_sql(SQL, db)
    from repro.core.reduce import reduce_all
    from repro.core.nest import nest
    from repro.engine.operators import LeftOuterHashJoin, as_relation

    reduced = reduce_all(query, db)
    joined = as_relation(
        LeftOuterHashJoin(
            reduced[1].relation, reduced[2].relation, ["r.k"], ["s.rk"]
        )
    )
    nested = nest(
        joined,
        by=[c for c in joined.schema.names if c.startswith("r.") or c == "_rid1"],
        keep=["s.b", "_rid2"],
    )
    print(nested.to_table())
    print("  r3's group is {(null, null)}: its member's *rid* is NULL — an")
    print("  empty-set marker from the outer join, excluded before the ALL.")
    print("  r1's NULL member carries a live rid: a genuine NULL in the set.")


if __name__ == "__main__":
    main()
